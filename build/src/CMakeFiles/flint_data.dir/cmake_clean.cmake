file(REMOVE_RECURSE
  "CMakeFiles/flint_data.dir/flint/data/client_dataset.cpp.o"
  "CMakeFiles/flint_data.dir/flint/data/client_dataset.cpp.o.d"
  "CMakeFiles/flint_data.dir/flint/data/dataset_stats.cpp.o"
  "CMakeFiles/flint_data.dir/flint/data/dataset_stats.cpp.o.d"
  "CMakeFiles/flint_data.dir/flint/data/partitioner.cpp.o"
  "CMakeFiles/flint_data.dir/flint/data/partitioner.cpp.o.d"
  "CMakeFiles/flint_data.dir/flint/data/proxy_generator.cpp.o"
  "CMakeFiles/flint_data.dir/flint/data/proxy_generator.cpp.o.d"
  "CMakeFiles/flint_data.dir/flint/data/proxy_writer.cpp.o"
  "CMakeFiles/flint_data.dir/flint/data/proxy_writer.cpp.o.d"
  "CMakeFiles/flint_data.dir/flint/data/synthetic_tasks.cpp.o"
  "CMakeFiles/flint_data.dir/flint/data/synthetic_tasks.cpp.o.d"
  "libflint_data.a"
  "libflint_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
