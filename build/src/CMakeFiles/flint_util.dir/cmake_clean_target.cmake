file(REMOVE_RECURSE
  "libflint_util.a"
)
