# Empty compiler generated dependencies file for flint_util.
# This may be replaced when dependencies are built.
