
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/util/config.cpp" "src/CMakeFiles/flint_util.dir/flint/util/config.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/config.cpp.o.d"
  "/root/repo/src/flint/util/csv.cpp" "src/CMakeFiles/flint_util.dir/flint/util/csv.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/csv.cpp.o.d"
  "/root/repo/src/flint/util/histogram.cpp" "src/CMakeFiles/flint_util.dir/flint/util/histogram.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/histogram.cpp.o.d"
  "/root/repo/src/flint/util/logging.cpp" "src/CMakeFiles/flint_util.dir/flint/util/logging.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/logging.cpp.o.d"
  "/root/repo/src/flint/util/rng.cpp" "src/CMakeFiles/flint_util.dir/flint/util/rng.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/rng.cpp.o.d"
  "/root/repo/src/flint/util/stats.cpp" "src/CMakeFiles/flint_util.dir/flint/util/stats.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/stats.cpp.o.d"
  "/root/repo/src/flint/util/table.cpp" "src/CMakeFiles/flint_util.dir/flint/util/table.cpp.o" "gcc" "src/CMakeFiles/flint_util.dir/flint/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
