file(REMOVE_RECURSE
  "CMakeFiles/flint_util.dir/flint/util/config.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/config.cpp.o.d"
  "CMakeFiles/flint_util.dir/flint/util/csv.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/csv.cpp.o.d"
  "CMakeFiles/flint_util.dir/flint/util/histogram.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/histogram.cpp.o.d"
  "CMakeFiles/flint_util.dir/flint/util/logging.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/logging.cpp.o.d"
  "CMakeFiles/flint_util.dir/flint/util/rng.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/rng.cpp.o.d"
  "CMakeFiles/flint_util.dir/flint/util/stats.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/stats.cpp.o.d"
  "CMakeFiles/flint_util.dir/flint/util/table.cpp.o"
  "CMakeFiles/flint_util.dir/flint/util/table.cpp.o.d"
  "libflint_util.a"
  "libflint_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
