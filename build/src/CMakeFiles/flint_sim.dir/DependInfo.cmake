
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flint/sim/event_queue.cpp" "src/CMakeFiles/flint_sim.dir/flint/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/flint_sim.dir/flint/sim/event_queue.cpp.o.d"
  "/root/repo/src/flint/sim/executor.cpp" "src/CMakeFiles/flint_sim.dir/flint/sim/executor.cpp.o" "gcc" "src/CMakeFiles/flint_sim.dir/flint/sim/executor.cpp.o.d"
  "/root/repo/src/flint/sim/fault_injector.cpp" "src/CMakeFiles/flint_sim.dir/flint/sim/fault_injector.cpp.o" "gcc" "src/CMakeFiles/flint_sim.dir/flint/sim/fault_injector.cpp.o.d"
  "/root/repo/src/flint/sim/leader.cpp" "src/CMakeFiles/flint_sim.dir/flint/sim/leader.cpp.o" "gcc" "src/CMakeFiles/flint_sim.dir/flint/sim/leader.cpp.o.d"
  "/root/repo/src/flint/sim/scheduler.cpp" "src/CMakeFiles/flint_sim.dir/flint/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/flint_sim.dir/flint/sim/scheduler.cpp.o.d"
  "/root/repo/src/flint/sim/sim_metrics.cpp" "src/CMakeFiles/flint_sim.dir/flint/sim/sim_metrics.cpp.o" "gcc" "src/CMakeFiles/flint_sim.dir/flint/sim/sim_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flint_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flint_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
