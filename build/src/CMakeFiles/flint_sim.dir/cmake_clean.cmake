file(REMOVE_RECURSE
  "CMakeFiles/flint_sim.dir/flint/sim/event_queue.cpp.o"
  "CMakeFiles/flint_sim.dir/flint/sim/event_queue.cpp.o.d"
  "CMakeFiles/flint_sim.dir/flint/sim/executor.cpp.o"
  "CMakeFiles/flint_sim.dir/flint/sim/executor.cpp.o.d"
  "CMakeFiles/flint_sim.dir/flint/sim/fault_injector.cpp.o"
  "CMakeFiles/flint_sim.dir/flint/sim/fault_injector.cpp.o.d"
  "CMakeFiles/flint_sim.dir/flint/sim/leader.cpp.o"
  "CMakeFiles/flint_sim.dir/flint/sim/leader.cpp.o.d"
  "CMakeFiles/flint_sim.dir/flint/sim/scheduler.cpp.o"
  "CMakeFiles/flint_sim.dir/flint/sim/scheduler.cpp.o.d"
  "CMakeFiles/flint_sim.dir/flint/sim/sim_metrics.cpp.o"
  "CMakeFiles/flint_sim.dir/flint/sim/sim_metrics.cpp.o.d"
  "libflint_sim.a"
  "libflint_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flint_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
