#include "flint/fl/fedavg.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace flint::fl {
namespace {

/// Model-free sync config over a counts-only universe.
SyncConfig model_free_config(const device::AvailabilityTrace& trace,
                             const device::DeviceCatalog& catalog,
                             const net::BandwidthModel& bandwidth,
                             const std::vector<std::uint32_t>& counts) {
  SyncConfig cfg;
  cfg.inputs.model_free = true;
  cfg.inputs.client_example_counts = &counts;
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &catalog;
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.duration.base_time_per_example_s = 0.05;
  cfg.inputs.duration.update_bytes = 100'000;
  cfg.inputs.reparticipation_gap_s = 0.0;
  cfg.inputs.max_rounds = 5;
  cfg.cohort_size = 5;
  cfg.overcommit = 1.4;
  cfg.round_deadline_s = 3600.0;
  return cfg;
}

TEST(FedAvg, ModelFreeRunsToMaxRounds) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(40, 1e7);
  std::vector<std::uint32_t> counts(40, 20);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  RunResult r = run_fedavg(cfg);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_EQ(r.metrics.aggregations(), 5u);
  // Over-commitment: 7 dispatched per round, 5 aggregated, 2 stragglers.
  EXPECT_EQ(r.metrics.tasks_started(), 5u * 7u);
  EXPECT_EQ(r.metrics.tasks_succeeded(), 25u);
  EXPECT_EQ(r.metrics.tasks_stale(), 10u);
  EXPECT_GT(r.metrics.client_compute_s(), 0.0);
  EXPECT_GT(r.virtual_duration_s, 0.0);
}

TEST(FedAvg, DeterministicForSameSeed) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace_a = test::staggered_trace(60, 5000.0, 60.0);
  auto trace_b = test::staggered_trace(60, 5000.0, 60.0);
  std::vector<std::uint32_t> counts(60, 15);
  auto cfg_a = model_free_config(trace_a, catalog, bw, counts);
  auto cfg_b = model_free_config(trace_b, catalog, bw, counts);
  cfg_a.inputs.seed = cfg_b.inputs.seed = 99;
  RunResult a = run_fedavg(cfg_a);
  RunResult b = run_fedavg(cfg_b);
  EXPECT_DOUBLE_EQ(a.virtual_duration_s, b.virtual_duration_s);
  EXPECT_EQ(a.metrics.tasks_started(), b.metrics.tasks_started());
  EXPECT_EQ(a.metrics.tasks_stale(), b.metrics.tasks_stale());
}

TEST(FedAvg, ShortWindowsCauseInterruptions) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  // Windows of 30s; tasks need 0.05s * 20000 examples = 1000s of compute
  // even on the fastest device, so every dispatch is cut off by window end.
  auto trace = test::staggered_trace(50, 30.0, 10.0);
  std::vector<std::uint32_t> counts(50, 20000);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 3;
  RunResult r = run_fedavg(cfg);
  EXPECT_GT(r.metrics.tasks_interrupted(), 0u);
  EXPECT_EQ(r.metrics.tasks_succeeded(), 0u);  // nothing can finish
  EXPECT_EQ(r.rounds, 0u);
}

TEST(FedAvg, DeadlineBoundsRoundDuration) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(30, 1e7);
  std::vector<std::uint32_t> counts(30, 50);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.round_deadline_s = 10.0;  // tasks need ~2.5s+ so some may miss
  cfg.inputs.max_rounds = 4;
  RunResult r = run_fedavg(cfg);
  for (const auto& round : r.metrics.rounds())
    EXPECT_LE(round.duration_s(), 10.0 + 1e-9);
}

TEST(FedAvg, ExecutorOutageDelaysDispatch) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(30, 1e7);
  std::vector<std::uint32_t> counts(30, 20);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 1;
  cfg.inputs.outages.push_back({0, 0.0, 500.0});  // all dispatch halts until 500
  RunResult r = run_fedavg(cfg);
  ASSERT_EQ(r.rounds, 1u);
  EXPECT_GE(r.metrics.rounds()[0].start, 500.0);
}

TEST(FedAvg, RealTrainingImprovesMetric) {
  util::Rng rng(7);
  auto task = test::small_task(rng, 60);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(60, 1e9);
  auto model = task.make_model(rng);
  double before = task.evaluate(*model);

  SyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 25;
  cfg.inputs.local.lr = 0.1;
  cfg.inputs.client_lr = LrSchedule::constant(0.1);
  cfg.cohort_size = 8;
  cfg.round_deadline_s = 1e6;
  RunResult r = run_fedavg(cfg);
  EXPECT_EQ(r.rounds, 25u);
  EXPECT_GT(r.final_metric, before + 0.1);
  EXPECT_FALSE(r.final_parameters.empty());
  EXPECT_FALSE(r.eval_curve.empty());
}

TEST(FedAvg, DpRunCompletesWithReasonableMetric) {
  util::Rng rng(8);
  auto task = test::small_task(rng, 50);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(50, 1e9);
  auto model = task.make_model(rng);

  SyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 10;
  privacy::DpConfig dp;
  dp.clip_norm = 1.0;
  dp.noise_multiplier = 0.3;
  cfg.inputs.dp = dp;
  cfg.cohort_size = 8;
  cfg.round_deadline_s = 1e6;
  RunResult r = run_fedavg(cfg);
  EXPECT_EQ(r.rounds, 10u);
  EXPECT_GT(r.final_metric, 0.0);
  EXPECT_LE(r.final_metric, 1.0);
}

TEST(FedAvg, EvalCadenceProducesCurve) {
  util::Rng rng(9);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(40, 1e9);
  auto model = task.make_model(rng);

  SyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 6;
  cfg.inputs.eval_every_rounds = 2;
  cfg.cohort_size = 5;
  cfg.round_deadline_s = 1e6;
  RunResult r = run_fedavg(cfg);
  EXPECT_GE(r.eval_curve.size(), 3u);
  for (std::size_t i = 1; i < r.eval_curve.size(); ++i)
    EXPECT_GE(r.eval_curve[i].round, r.eval_curve[i - 1].round);
}

TEST(FedAvg, ValidationRejectsMissingInputs) {
  SyncConfig cfg;
  EXPECT_THROW(run_fedavg(cfg), util::CheckError);
}

}  // namespace
}  // namespace flint::fl
