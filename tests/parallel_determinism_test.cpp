// The parallel training runtime's core contract (DESIGN.md §11): every
// simulated quantity — final parameters, eval curve, system metrics — is
// bit-identical at any --threads value. Reductions join futures in fixed
// task order and per-task RNG streams are derived from (seed, task id), so
// the thread count can only change wall time.
#include <gtest/gtest.h>

#include <vector>

#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "run_identical.h"
#include "test_helpers.h"

namespace flint::fl {
namespace {

struct Variant {
  const char* name;
  bool dp;
  bool compression;
};

constexpr Variant kVariants[] = {
    {"plain", false, false},
    {"dp", true, false},
    {"compression", false, true},
    {"dp+compression", true, true},
};

void apply_variant(RunInputs& inputs, const Variant& v) {
  if (v.dp) {
    privacy::DpConfig dp;
    dp.clip_norm = 1.0;
    dp.noise_multiplier = 0.4;
    inputs.dp = dp;
  }
  if (v.compression) {
    compress::CompressionConfig c;
    c.kind = compress::CompressionKind::kTopK;
    c.top_k_fraction = 0.25;
    inputs.compression = c;
  }
}

// Exact equality everywhere (shared with the crash-resume tests): the
// contract is bit-identical, not "close".
using test::expect_identical_runs;

// Each run rebuilds model and trace from the same seeds so the only varying
// input is the thread count.
class Harness {
 public:
  Harness() {
    util::Rng rng(77);
    task_ = test::small_task(rng, /*clients=*/40);
  }

  RunResult run_avg(std::size_t threads, const Variant& v) {
    util::Rng model_rng(5);
    auto model = task_.make_model(model_rng);
    auto trace = test::always_available(40, 1e7);
    auto catalog = device::DeviceCatalog::standard();
    net::FixedBandwidthModel bw(10.0);
    SyncConfig cfg;
    test::wire_inputs(cfg.inputs, task_, *model, trace, catalog, bw);
    cfg.inputs.threads = threads;
    cfg.inputs.max_rounds = 4;
    cfg.inputs.eval_every_rounds = 2;
    cfg.inputs.seed = 9;
    cfg.cohort_size = 8;
    apply_variant(cfg.inputs, v);
    return run_fedavg(cfg);
  }

  RunResult run_buff(std::size_t threads, const Variant& v) {
    util::Rng model_rng(5);
    auto model = task_.make_model(model_rng);
    auto trace = test::always_available(40, 1e7);
    auto catalog = device::DeviceCatalog::standard();
    net::FixedBandwidthModel bw(10.0);
    AsyncConfig cfg;
    test::wire_inputs(cfg.inputs, task_, *model, trace, catalog, bw);
    cfg.inputs.threads = threads;
    cfg.inputs.max_rounds = 5;
    cfg.inputs.eval_every_rounds = 2;
    cfg.inputs.seed = 9;
    cfg.buffer_size = 4;
    cfg.max_concurrency = 12;
    cfg.max_staleness = 50;
    apply_variant(cfg.inputs, v);
    return run_fedbuff(cfg);
  }

 private:
  data::FederatedTask task_;
};

TEST(ParallelDeterminism, FedAvgBitIdenticalAcrossThreadCounts) {
  Harness h;
  for (const Variant& v : kVariants) {
    RunResult serial = h.run_avg(1, v);
    EXPECT_FALSE(serial.final_parameters.empty());
    for (std::size_t threads : {2u, 8u})
      expect_identical_runs(serial, h.run_avg(threads, v), v.name);
  }
}

TEST(ParallelDeterminism, FedBuffBitIdenticalAcrossThreadCounts) {
  Harness h;
  for (const Variant& v : kVariants) {
    RunResult serial = h.run_buff(1, v);
    EXPECT_FALSE(serial.final_parameters.empty());
    EXPECT_GT(serial.rounds, 0u);
    for (std::size_t threads : {2u, 8u})
      expect_identical_runs(serial, h.run_buff(threads, v), v.name);
  }
}

TEST(ParallelDeterminism, SerialRunsAreRepeatable) {
  // Baseline sanity: the harness itself is deterministic at a fixed thread
  // count; without this, the cross-thread assertions prove nothing.
  Harness h;
  expect_identical_runs(h.run_buff(1, kVariants[0]), h.run_buff(1, kVariants[0]), "repeat");
}

}  // namespace
}  // namespace flint::fl
