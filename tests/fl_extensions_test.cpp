// Tests for the FL extensions: FedProx proximal regularization and
// compressed-update training.
#include <gtest/gtest.h>

#include "flint/fl/aggregator.h"
#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "test_helpers.h"

namespace flint::fl {
namespace {

TEST(FedProx, ProximalTermShrinksClientDrift) {
  util::Rng rng(41);
  auto task = test::small_task(rng, 10);
  auto model = task.make_model(rng);
  std::vector<float> global = model->get_flat_parameters();
  const auto& client_data = task.train.client_at(0).examples;

  auto drift = [&](double mu) {
    LocalTrainer trainer(model->clone(), task.batch_dense_dim());
    LocalTrainConfig cfg;
    cfg.lr = 0.2;
    cfg.epochs = 8;
    cfg.prox_mu = mu;
    LocalTrainResult r = trainer.train(client_data, global, cfg);
    double norm = 0.0;
    for (float d : r.delta) norm += static_cast<double>(d) * d;
    return std::sqrt(norm);
  };
  double plain = drift(0.0);
  double prox = drift(1.0);
  EXPECT_GT(plain, 0.0);
  EXPECT_LT(prox, plain);  // the proximal anchor holds the client closer
}

TEST(FedProx, ZeroMuMatchesPlainSgd) {
  util::Rng rng(42);
  auto task = test::small_task(rng, 5);
  auto model = task.make_model(rng);
  std::vector<float> global = model->get_flat_parameters();
  const auto& client_data = task.train.client_at(0).examples;
  LocalTrainConfig cfg;
  cfg.lr = 0.1;
  LocalTrainer a(model->clone(), task.batch_dense_dim());
  LocalTrainer b(model->clone(), task.batch_dense_dim());
  cfg.prox_mu = 0.0;
  auto ra = a.train(client_data, global, cfg);
  auto rb = b.train(client_data, global, cfg);
  EXPECT_EQ(ra.delta, rb.delta);  // deterministic and identical
}

TEST(FedProx, RunsInsideFedAvg) {
  util::Rng rng(43);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(40, 1e9);
  auto model = task.make_model(rng);
  double before = task.evaluate(*model);

  SyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 15;
  cfg.inputs.local.prox_mu = 0.1;
  cfg.cohort_size = 8;
  cfg.round_deadline_s = 1e6;
  RunResult r = run_fedavg(cfg);
  EXPECT_EQ(r.rounds, 15u);
  EXPECT_GT(r.final_metric, before);
}

class CompressedTrainingTest : public ::testing::TestWithParam<compress::CompressionKind> {};

TEST_P(CompressedTrainingTest, FedBuffStillLearns) {
  util::Rng rng(44);
  auto task = test::small_task(rng, 50);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(50, 1e9);
  auto model = task.make_model(rng);
  double before = task.evaluate(*model);

  AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 25;
  cfg.inputs.compression.kind = GetParam();
  cfg.inputs.compression.top_k_fraction = 0.3;
  cfg.inputs.duration.update_bytes = static_cast<std::uint64_t>(
      compress::compressed_bytes(model->parameter_count(), cfg.inputs.compression));
  cfg.buffer_size = 5;
  cfg.max_concurrency = 10;
  RunResult r = run_fedbuff(cfg);
  EXPECT_EQ(r.rounds, 25u);
  EXPECT_GT(r.final_metric, before + 0.05) << "compression should not stop learning";
}

INSTANTIATE_TEST_SUITE_P(Kinds, CompressedTrainingTest,
                         ::testing::Values(compress::CompressionKind::kNone,
                                           compress::CompressionKind::kInt8,
                                           compress::CompressionKind::kTopK));

TEST(CompressedTraining, SmallerUpdatesShortenCommTime) {
  // Same workload; int8 updates are ~4x smaller, so on a slow link the
  // virtual training time drops.
  util::Rng rng(45);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel slow_net(0.5);  // comm-dominated regime
  auto model = task.make_model(rng);

  auto run_with = [&](compress::CompressionKind kind) {
    auto trace = test::always_available(40, 1e9);
    AsyncConfig cfg;
    test::wire_inputs(cfg.inputs, task, *model, trace, catalog, slow_net);
    cfg.inputs.duration.base_time_per_example_s = 1e-5;  // compute negligible
    cfg.inputs.max_rounds = 10;
    cfg.inputs.compression.kind = kind;
    cfg.inputs.duration.update_bytes = static_cast<std::uint64_t>(
        compress::compressed_bytes(model->parameter_count(), cfg.inputs.compression));
    cfg.buffer_size = 5;
    cfg.max_concurrency = 10;
    return run_fedbuff(cfg).virtual_duration_s;
  };
  double raw = run_with(compress::CompressionKind::kNone);
  double quantized = run_with(compress::CompressionKind::kInt8);
  EXPECT_LT(quantized, raw * 0.5);
}

TEST(ServerMomentum, ChangesTrajectoryAndStillLearns) {
  util::Rng rng(46);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto model = task.make_model(rng);
  double before = task.evaluate(*model);

  auto run_with = [&](double momentum) {
    auto trace = test::always_available(40, 1e9);
    AsyncConfig cfg;
    test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
    cfg.inputs.max_rounds = 20;
    cfg.inputs.server_momentum = momentum;
    cfg.buffer_size = 5;
    cfg.max_concurrency = 10;
    return run_fedbuff(cfg);
  };
  RunResult plain = run_with(0.0);
  RunResult momentum = run_with(0.9);
  EXPECT_GT(plain.final_metric, before);
  EXPECT_GT(momentum.final_metric, before);
  EXPECT_NE(plain.final_parameters, momentum.final_parameters);
}

TEST(ServerMomentum, ZeroMatchesPlainAveraging) {
  std::vector<float> params_a = {1.0f, 2.0f};
  std::vector<float> params_b = params_a;
  std::vector<float> delta = {0.5f, -0.5f};
  ServerOptimizer opt(1.0, 0.0);
  opt.step(params_a, delta);
  apply_server_update(params_b, delta, 1.0);
  EXPECT_EQ(params_a, params_b);
}

TEST(ServerMomentum, AccumulatesVelocity) {
  std::vector<float> params = {0.0f};
  std::vector<float> delta = {1.0f};
  ServerOptimizer opt(1.0, 0.5);
  opt.step(params, delta);  // v = 1.0, p = 1.0
  EXPECT_FLOAT_EQ(params[0], 1.0f);
  opt.step(params, delta);  // v = 1.5, p = 2.5
  EXPECT_FLOAT_EQ(params[0], 2.5f);
}

TEST(ServerMomentum, RejectsBadConfig) {
  EXPECT_THROW(ServerOptimizer(0.0, 0.0), util::CheckError);
  EXPECT_THROW(ServerOptimizer(1.0, 1.0), util::CheckError);
  EXPECT_THROW(ServerOptimizer(1.0, -0.1), util::CheckError);
}

}  // namespace
}  // namespace flint::fl
