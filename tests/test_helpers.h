// Shared builders for FL integration tests: small tasks, traces, and run
// configs that finish in milliseconds.
#pragma once

#include <vector>

#include "flint/data/synthetic_tasks.h"
#include "flint/device/availability.h"
#include "flint/fl/run_common.h"
#include "flint/net/bandwidth_model.h"

namespace flint::test {

/// A tiny ads-like task (fast to train, converges visibly).
inline data::FederatedTask small_task(util::Rng& rng, std::size_t clients = 60,
                                      data::Domain domain = data::Domain::kAds) {
  data::SyntheticTaskConfig cfg;
  cfg.domain = domain;
  cfg.clients = clients;
  cfg.mean_records = 20.0;
  cfg.std_records = 15.0;
  cfg.max_records = 200;
  cfg.dense_dim = 8;
  cfg.vocab = 60;
  cfg.heterogeneity = 0.3;
  cfg.test_examples = 600;
  return data::make_synthetic_task(cfg, rng);
}

/// An always-on availability trace: every client in [0, horizon) at device 0.
inline device::AvailabilityTrace always_available(std::size_t clients, double horizon_s,
                                                  std::size_t device_index = 0) {
  std::vector<device::AvailabilityWindow> windows;
  windows.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c)
    windows.push_back({c, device_index, 0.0, horizon_s});
  return device::AvailabilityTrace(std::move(windows));
}

/// A trace of per-client windows with staggered starts.
inline device::AvailabilityTrace staggered_trace(std::size_t clients, double window_s,
                                                 double stagger_s) {
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < clients; ++c) {
    double start = static_cast<double>(c) * stagger_s;
    windows.push_back({c, c % 27, start, start + window_s});
  }
  return device::AvailabilityTrace(std::move(windows));
}

/// Wire the common inputs of a run config (non-owning: keep the referenced
/// objects alive for the run).
inline void wire_inputs(fl::RunInputs& inputs, const data::FederatedTask& task, ml::Model& model,
                        const device::AvailabilityTrace& trace,
                        const device::DeviceCatalog& catalog,
                        const net::BandwidthModel& bandwidth) {
  inputs.dataset = &task.train;
  inputs.dense_dim = task.batch_dense_dim();
  inputs.model_template = &model;
  inputs.trace = &trace;
  inputs.catalog = &catalog;
  inputs.bandwidth = &bandwidth;
  inputs.test = &task.test;
  inputs.domain = task.config.domain;
  inputs.local.loss = task.loss_kind();
  inputs.duration.base_time_per_example_s = 0.01;
  inputs.duration.update_bytes = 50'000;
  inputs.reparticipation_gap_s = 0.0;  // tiny tests reuse clients freely
}

}  // namespace flint::test
