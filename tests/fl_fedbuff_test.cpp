#include "flint/fl/fedbuff.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "flint/fl/fedavg.h"
#include "test_helpers.h"

namespace flint::fl {
namespace {

AsyncConfig model_free_config(const device::AvailabilityTrace& trace,
                              const device::DeviceCatalog& catalog,
                              const net::BandwidthModel& bandwidth,
                              const std::vector<std::uint32_t>& counts) {
  AsyncConfig cfg;
  cfg.inputs.model_free = true;
  cfg.inputs.client_example_counts = &counts;
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &catalog;
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.duration.base_time_per_example_s = 0.05;
  cfg.inputs.duration.update_bytes = 100'000;
  cfg.inputs.reparticipation_gap_s = 0.0;
  cfg.inputs.max_rounds = 10;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  cfg.max_staleness = 100;
  return cfg;
}

TEST(FedBuff, ModelFreeReachesTargetAggregations) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(50, 1e7);
  std::vector<std::uint32_t> counts(50, 20);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  RunResult r = run_fedbuff(cfg);
  EXPECT_EQ(r.rounds, 10u);
  EXPECT_EQ(r.metrics.aggregations(), 10u);
  // Each aggregation consumed buffer_size updates.
  EXPECT_GE(r.metrics.tasks_succeeded(), 10u * 4u);
  EXPECT_GT(r.virtual_duration_s, 0.0);
}

TEST(FedBuff, DeterministicForSameSeed) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace_a = test::staggered_trace(80, 4000.0, 30.0);
  auto trace_b = test::staggered_trace(80, 4000.0, 30.0);
  std::vector<std::uint32_t> counts(80, 25);
  auto cfg_a = model_free_config(trace_a, catalog, bw, counts);
  auto cfg_b = model_free_config(trace_b, catalog, bw, counts);
  cfg_a.inputs.seed = cfg_b.inputs.seed = 123;
  RunResult a = run_fedbuff(cfg_a);
  RunResult b = run_fedbuff(cfg_b);
  EXPECT_DOUBLE_EQ(a.virtual_duration_s, b.virtual_duration_s);
  EXPECT_EQ(a.metrics.tasks_started(), b.metrics.tasks_started());
  EXPECT_EQ(a.metrics.tasks_stale(), b.metrics.tasks_stale());
}

TEST(FedBuff, RoundRecordsTrackBufferFills) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(40, 1e7);
  std::vector<std::uint32_t> counts(40, 20);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  RunResult r = run_fedbuff(cfg);
  ASSERT_EQ(r.metrics.rounds().size(), 10u);
  for (const auto& round : r.metrics.rounds()) {
    EXPECT_EQ(round.updates_aggregated, 4u);
    EXPECT_GE(round.end, round.start);
  }
  EXPECT_GT(r.metrics.mean_round_duration_s(), 0.0);
}

TEST(FedBuff, ShortWindowsProduceInterruptions) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::staggered_trace(60, 20.0, 5.0);  // 20s windows
  std::vector<std::uint32_t> counts(60, 2000);        // ~100s tasks
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 2;
  RunResult r = run_fedbuff(cfg);
  EXPECT_GT(r.metrics.tasks_interrupted(), 0u);
  EXPECT_EQ(r.rounds, 0u);  // nothing completes
}

TEST(FedBuff, TightStalenessDiscardsUpdates) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(100, 1e7);
  // Heterogeneous partition sizes: some clients are 50x slower, so their
  // updates arrive many versions late.
  std::vector<std::uint32_t> counts(100);
  for (std::size_t i = 0; i < 100; ++i) counts[i] = (i % 5 == 0) ? 1000 : 20;
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 40;
  cfg.max_concurrency = 60;
  cfg.max_staleness = 0;  // only perfectly fresh updates accepted
  RunResult strict = run_fedbuff(cfg);
  cfg.max_staleness = 1000;
  cfg.inputs.seed = 1;  // same seed; staleness is the only change
  RunResult loose = run_fedbuff(cfg);
  EXPECT_GT(strict.metrics.tasks_stale(), loose.metrics.tasks_stale());
}

TEST(FedBuff, HigherConcurrencyMoreStaleness) {
  // Figure 8's trend: higher concurrency -> more stale tasks.
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  std::vector<std::uint32_t> counts(300, 40);
  auto run_with_concurrency = [&](std::size_t concurrency) {
    auto trace = test::always_available(300, 1e7);
    auto cfg = model_free_config(trace, catalog, bw, counts);
    cfg.inputs.max_rounds = 30;
    cfg.buffer_size = 5;
    cfg.max_staleness = 3;
    cfg.max_concurrency = concurrency;
    return run_fedbuff(cfg);
  };
  RunResult low = run_with_concurrency(10);
  RunResult high = run_with_concurrency(150);
  EXPECT_GT(high.metrics.tasks_stale(), low.metrics.tasks_stale());
}

TEST(FedBuff, CheckpointsWrittenAtCadence) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "flint_fedbuff_ckpt";
  fs::remove_all(dir);
  store::CheckpointStore ckpt(dir.string());

  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(40, 1e7);
  std::vector<std::uint32_t> counts(40, 20);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.leader.checkpoint_every_rounds = 3;
  cfg.inputs.leader.checkpoint_store = &ckpt;
  RunResult r = run_fedbuff(cfg);
  EXPECT_EQ(r.rounds, 10u);
  EXPECT_EQ(ckpt.checkpoint_count(), 3u);  // rounds 3, 6, 9
  auto latest = ckpt.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 9u);
  fs::remove_all(dir);
}

TEST(FedBuff, RealTrainingImprovesMetric) {
  util::Rng rng(11);
  auto task = test::small_task(rng, 60);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(60, 1e9);
  auto model = task.make_model(rng);
  double before = task.evaluate(*model);

  AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 30;
  cfg.inputs.local.lr = 0.1;
  cfg.inputs.client_lr = LrSchedule::constant(0.1);
  cfg.buffer_size = 6;
  cfg.max_concurrency = 12;
  RunResult r = run_fedbuff(cfg);
  EXPECT_EQ(r.rounds, 30u);
  EXPECT_GT(r.final_metric, before + 0.1);
}

TEST(FedBuff, FasterThanFedAvgUnderHeavyTails) {
  // Table 3's headline: async pipelining wins when task durations are
  // heavy-tailed. Same universe, same target update count.
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  util::Rng rng(13);
  std::vector<std::uint32_t> counts(400);
  for (auto& c : counts)
    c = static_cast<std::uint32_t>(std::min(2000.0, std::max(5.0, rng.lognormal(3.0, 1.5))));

  std::uint64_t target_updates = 100;
  auto trace_async = test::always_available(400, 1e9);
  AsyncConfig async_cfg = model_free_config(trace_async, catalog, bw, counts);
  async_cfg.buffer_size = 10;
  async_cfg.inputs.max_rounds = target_updates / 10;
  async_cfg.max_concurrency = 40;
  RunResult async_r = run_fedbuff(async_cfg);

  auto trace_sync = test::always_available(400, 1e9);
  SyncConfig sync_cfg;
  sync_cfg.inputs = async_cfg.inputs;
  sync_cfg.inputs.trace = &trace_sync;
  sync_cfg.cohort_size = 10;
  sync_cfg.inputs.max_rounds = target_updates / 10;
  sync_cfg.overcommit = 1.3;
  sync_cfg.round_deadline_s = 1e8;
  RunResult sync_r = run_fedavg(sync_cfg);

  ASSERT_EQ(async_r.rounds, sync_cfg.inputs.max_rounds);
  ASSERT_EQ(sync_r.rounds, sync_cfg.inputs.max_rounds);
  EXPECT_LT(async_r.virtual_duration_s, sync_r.virtual_duration_s);
}

TEST(FedBuff, ValidationRejectsBadConfig) {
  AsyncConfig cfg;
  EXPECT_THROW(run_fedbuff(cfg), util::CheckError);
}

}  // namespace
}  // namespace flint::fl
