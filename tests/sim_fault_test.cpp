// Fault-tolerance integration: the async runner under executor outages and
// random fault plans (§3.4: "the leader node halts dispatching tasks until
// all executors have pinged it with a healthy status-code"; recovery loses
// at most one checkpoint cadence).
#include <gtest/gtest.h>

#include <filesystem>

#include "flint/fl/fedbuff.h"
#include "flint/sim/fault_injector.h"
#include "test_helpers.h"

namespace flint::fl {
namespace {

AsyncConfig model_free_config(const device::AvailabilityTrace& trace,
                              const device::DeviceCatalog& catalog,
                              const net::BandwidthModel& bandwidth,
                              const std::vector<std::uint32_t>& counts) {
  AsyncConfig cfg;
  cfg.inputs.model_free = true;
  cfg.inputs.client_example_counts = &counts;
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &catalog;
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.duration.base_time_per_example_s = 0.05;
  cfg.inputs.duration.update_bytes = 100'000;
  cfg.inputs.reparticipation_gap_s = 0.0;
  cfg.inputs.max_rounds = 10;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  return cfg;
}

TEST(FedBuffFaults, OutageHaltsDispatchUntilAllHealthy) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  std::vector<std::uint32_t> counts(40, 20);

  auto trace_a = test::always_available(40, 1e7);
  auto healthy_cfg = model_free_config(trace_a, catalog, bw, counts);
  RunResult healthy = run_fedbuff(healthy_cfg);

  auto trace_b = test::always_available(40, 1e7);
  auto outage_cfg = model_free_config(trace_b, catalog, bw, counts);
  outage_cfg.inputs.outages.push_back({0, 0.0, 1000.0});  // one sick executor
  RunResult delayed = run_fedbuff(outage_cfg);

  ASSERT_EQ(healthy.rounds, 10u);
  ASSERT_EQ(delayed.rounds, 10u);
  // No dispatch can happen before the outage clears.
  EXPECT_GE(delayed.metrics.rounds().front().end, 1000.0);
  EXPECT_GT(delayed.virtual_duration_s, healthy.virtual_duration_s + 900.0);
}

TEST(FedBuffFaults, MidRunOutagePausesAggregations) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  std::vector<std::uint32_t> counts(40, 20);
  auto trace = test::always_available(40, 1e7);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 30;
  // The outage must begin while the run is still in flight (rounds take
  // well under a second of virtual time each here).
  cfg.inputs.outages.push_back({1, 5.0, 2005.0});
  RunResult r = run_fedbuff(cfg);
  ASSERT_EQ(r.rounds, 30u);
  // There must be a gap of at least ~the outage length between some pair of
  // consecutive aggregations (in-flight tasks finish, then dispatch stalls).
  double max_gap = 0.0;
  const auto& rounds = r.metrics.rounds();
  for (std::size_t i = 1; i < rounds.size(); ++i)
    max_gap = std::max(max_gap, rounds[i].end - rounds[i - 1].end);
  EXPECT_GT(max_gap, 1500.0);
}

TEST(FedBuffFaults, RandomFaultPlanStillCompletes) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  std::vector<std::uint32_t> counts(60, 20);
  util::Rng rng(7);
  sim::FaultPlanConfig plan;
  plan.mean_time_between_failures_s = 600.0;
  plan.mean_outage_s = 120.0;
  plan.horizon_s = 4.0 * 3600.0;
  auto outages = sim::plan_faults(4, plan, rng);
  ASSERT_FALSE(outages.empty());

  auto trace = test::always_available(60, 1e7);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 20;
  cfg.inputs.leader.executor_count = 4;
  cfg.inputs.outages = outages;
  RunResult r = run_fedbuff(cfg);
  // Self-healing: the job makes it through a fault-ridden schedule.
  EXPECT_EQ(r.rounds, 20u);
  const auto& m = r.metrics;
  EXPECT_EQ(m.tasks_started(),
            m.tasks_succeeded() + m.tasks_interrupted() + m.tasks_stale() + m.tasks_failed());
}

TEST(FedBuffFaults, CheckpointRecoveryAfterRandomFaults) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "flint_fault_ckpt";
  fs::remove_all(dir);
  store::CheckpointStore ckpt(dir.string());

  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  std::vector<std::uint32_t> counts(40, 20);
  auto trace = test::always_available(40, 1e7);
  auto cfg = model_free_config(trace, catalog, bw, counts);
  cfg.inputs.max_rounds = 12;
  cfg.inputs.outages.push_back({0, 100.0, 300.0});
  cfg.inputs.leader.checkpoint_every_rounds = 2;
  cfg.inputs.leader.checkpoint_store = &ckpt;
  RunResult r = run_fedbuff(cfg);
  ASSERT_EQ(r.rounds, 12u);
  auto latest = ckpt.latest();
  ASSERT_TRUE(latest.has_value());
  // With cadence 2, recovery loses at most 2 rounds of work.
  EXPECT_GE(latest->round, r.rounds - 2);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace flint::fl
