// Exact-equality comparison of two RunResults: the shared machinery behind
// the thread-count determinism tests (DESIGN.md §11) and the crash-resume
// tests (§12). The contract in both cases is bit-identical, not "close", so
// every comparison here is EXPECT_EQ — never a tolerance.
#pragma once

#include <gtest/gtest.h>

#include "flint/fl/run_common.h"

namespace flint::test {

inline void expect_identical_runs(const fl::RunResult& a, const fl::RunResult& b,
                                  const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.final_parameters.size(), b.final_parameters.size());
  for (std::size_t i = 0; i < a.final_parameters.size(); ++i)
    ASSERT_EQ(a.final_parameters[i], b.final_parameters[i]) << "parameter " << i;
  EXPECT_EQ(a.final_metric, b.final_metric);
  EXPECT_EQ(a.virtual_duration_s, b.virtual_duration_s);
  EXPECT_EQ(a.rounds, b.rounds);

  ASSERT_EQ(a.eval_curve.size(), b.eval_curve.size());
  for (std::size_t i = 0; i < a.eval_curve.size(); ++i) {
    EXPECT_EQ(a.eval_curve[i].time, b.eval_curve[i].time);
    EXPECT_EQ(a.eval_curve[i].round, b.eval_curve[i].round);
    EXPECT_EQ(a.eval_curve[i].metric, b.eval_curve[i].metric);
    EXPECT_EQ(a.eval_curve[i].train_loss, b.eval_curve[i].train_loss);
  }

  EXPECT_EQ(a.metrics.tasks_started(), b.metrics.tasks_started());
  EXPECT_EQ(a.metrics.tasks_succeeded(), b.metrics.tasks_succeeded());
  EXPECT_EQ(a.metrics.tasks_interrupted(), b.metrics.tasks_interrupted());
  EXPECT_EQ(a.metrics.tasks_stale(), b.metrics.tasks_stale());
  EXPECT_EQ(a.metrics.tasks_failed(), b.metrics.tasks_failed());
  EXPECT_EQ(a.metrics.client_compute_s(), b.metrics.client_compute_s());
  EXPECT_EQ(a.metrics.updates_aggregated(), b.metrics.updates_aggregated());
  ASSERT_EQ(a.metrics.rounds().size(), b.metrics.rounds().size());
  for (std::size_t i = 0; i < a.metrics.rounds().size(); ++i) {
    EXPECT_EQ(a.metrics.rounds()[i].start, b.metrics.rounds()[i].start);
    EXPECT_EQ(a.metrics.rounds()[i].end, b.metrics.rounds()[i].end);
    EXPECT_EQ(a.metrics.rounds()[i].updates_aggregated,
              b.metrics.rounds()[i].updates_aggregated);
    EXPECT_EQ(a.metrics.rounds()[i].mean_staleness, b.metrics.rounds()[i].mean_staleness);
  }
  // Checkpoint-write records are part of the run timeline, so a resumed run
  // must reproduce them too — including the one the restored checkpoint
  // recorded about itself.
  ASSERT_EQ(a.metrics.checkpoints().size(), b.metrics.checkpoints().size());
  for (std::size_t i = 0; i < a.metrics.checkpoints().size(); ++i) {
    EXPECT_EQ(a.metrics.checkpoints()[i].round, b.metrics.checkpoints()[i].round);
    EXPECT_EQ(a.metrics.checkpoints()[i].time, b.metrics.checkpoints()[i].time);
  }

  // Attribution rollups: totals reconcile with the counters above by
  // construction, so comparing the totals row covers the ledger.
  EXPECT_EQ(a.ledger.totals.clients, b.ledger.totals.clients);
  EXPECT_EQ(a.ledger.totals.tasks_succeeded, b.ledger.totals.tasks_succeeded);
  EXPECT_EQ(a.ledger.totals.tasks_interrupted, b.ledger.totals.tasks_interrupted);
  EXPECT_EQ(a.ledger.totals.tasks_stale, b.ledger.totals.tasks_stale);
  EXPECT_EQ(a.ledger.totals.tasks_failed, b.ledger.totals.tasks_failed);
  EXPECT_EQ(a.ledger.totals.compute_s, b.ledger.totals.compute_s);
  EXPECT_EQ(a.ledger.totals.wasted_compute_s, b.ledger.totals.wasted_compute_s);
  EXPECT_EQ(a.ledger.totals.bytes_down, b.ledger.totals.bytes_down);
  EXPECT_EQ(a.ledger.totals.bytes_up, b.ledger.totals.bytes_up);
}

}  // namespace flint::test
