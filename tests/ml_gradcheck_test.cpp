// End-to-end numeric gradient checks: full models (front end + trunk + loss)
// against central finite differences. Catches wiring bugs that per-layer
// checks can miss (gradient slicing at the embedding/dense concatenation,
// multi-head loss fan-out, token padding in the CNN).
#include <gtest/gtest.h>

#include "flint/ml/loss.h"
#include "flint/ml/model.h"
#include "flint/util/rng.h"

namespace flint::ml {
namespace {

Batch mixed_batch(std::size_t n, std::size_t dense_dim, std::size_t vocab, util::Rng& rng) {
  std::vector<Example> examples(n);
  for (auto& e : examples) {
    e.dense.resize(dense_dim);
    for (float& v : e.dense) v = static_cast<float>(rng.normal());
    e.tokens.resize(4);
    for (auto& t : e.tokens)
      t = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(vocab) - 1));
    e.label = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    e.label2 = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  return Batch::from_examples(examples, dense_dim);
}

double loss_of(Model& model, const Batch& batch) {
  Tensor logits = model.forward(batch);
  if (model.heads() == 1) return bce_with_logits(logits, batch.labels).loss;
  return multitask_bce(logits, {batch.labels, batch.labels2}).loss;
}

/// Compare analytic dL/dtheta against central differences on a sample of
/// coordinates (stride keeps runtime bounded for big models).
void check_model_gradients(Model& model, const Batch& batch, double tol = 3e-3) {
  Tensor logits = model.forward(batch);
  LossResult loss = model.heads() == 1
                        ? bce_with_logits(logits, batch.labels)
                        : multitask_bce(logits, {batch.labels, batch.labels2});
  model.zero_grad();
  model.backward(loss.d_logits);
  std::vector<float> analytic = model.get_flat_gradients();
  std::vector<float> params = model.get_flat_parameters();

  const float eps = 1e-3f;
  std::size_t stride = std::max<std::size_t>(1, params.size() / 40);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    float saved = params[i];
    params[i] = saved + eps;
    model.set_flat_parameters(params);
    double up = loss_of(model, batch);
    params[i] = saved - eps;
    model.set_flat_parameters(params);
    double down = loss_of(model, batch);
    params[i] = saved;
    double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol) << "parameter index " << i;
  }
  model.set_flat_parameters(params);
}

TEST(ModelGradCheck, DenseOnlyMlp) {
  util::Rng rng(1);
  FeedForwardConfig cfg;
  cfg.dense_dim = 6;
  cfg.hidden = {8, 4};
  FeedForwardModel model(cfg);
  model.init(rng);
  check_model_gradients(model, mixed_batch(8, 6, 10, rng));
}

TEST(ModelGradCheck, EmbeddingPlusDenseConcatenation) {
  // Exercises the gradient slicing at the [embedding | dense] boundary.
  util::Rng rng(2);
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kEmbedding;
  cfg.vocab = 12;
  cfg.embed_dim = 5;
  cfg.dense_dim = 3;
  cfg.hidden = {6};
  FeedForwardModel model(cfg);
  model.init(rng);
  check_model_gradients(model, mixed_batch(6, 3, 12, rng));
}

TEST(ModelGradCheck, EmbeddingOnly) {
  util::Rng rng(3);
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kEmbedding;
  cfg.vocab = 15;
  cfg.embed_dim = 4;
  cfg.hidden = {5};
  FeedForwardModel model(cfg);
  model.init(rng);
  // float32 mean-pooled lookups lose a little precision against double
  // central differences; allow a slightly wider band.
  check_model_gradients(model, mixed_batch(6, 0, 15, rng), /*tol=*/8e-3);
}

TEST(ModelGradCheck, MultiTaskHeads) {
  util::Rng rng(4);
  FeedForwardConfig cfg;
  cfg.dense_dim = 5;
  cfg.hidden = {6};
  cfg.heads = 2;
  FeedForwardModel model(cfg);
  model.init(rng);
  check_model_gradients(model, mixed_batch(6, 5, 10, rng));
}

TEST(ModelGradCheck, HashingFrontEnd) {
  util::Rng rng(5);
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kHashing;
  cfg.hash_buckets = 16;
  cfg.hidden = {6};
  FeedForwardModel model(cfg);
  model.init(rng);
  check_model_gradients(model, mixed_batch(6, 0, 40, rng));
}

TEST(ModelGradCheck, ConvTextModel) {
  // Max-pool argmax ties can flip under perturbation; a slightly looser
  // tolerance absorbs the rare kink.
  util::Rng rng(6);
  ConvTextConfig cfg;
  cfg.vocab = 20;
  cfg.embed_dim = 4;
  cfg.seq_len = 6;
  cfg.conv_channels = 3;
  cfg.kernel = 2;
  cfg.hidden = {4};
  ConvTextModel model(cfg);
  model.init(rng);
  check_model_gradients(model, mixed_batch(5, 0, 20, rng), /*tol=*/1e-2);
}

}  // namespace
}  // namespace flint::ml
