// Randomized invariant tests for the FL runners: across arbitrary
// configurations, the system-metric accounting must balance and round
// records must be consistent.
#include <gtest/gtest.h>

#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "test_helpers.h"

namespace flint::fl {
namespace {

struct RandomSetup {
  std::vector<std::uint32_t> counts;
  std::vector<device::AvailabilityWindow> windows;
  device::DeviceCatalog catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  std::size_t clients = 0;
};

RandomSetup random_setup(util::Rng& rng) {
  RandomSetup s;
  s.clients = static_cast<std::size_t>(rng.uniform_int(50, 400));
  s.counts.resize(s.clients);
  for (auto& c : s.counts) c = static_cast<std::uint32_t>(rng.uniform_int(1, 400));
  for (std::size_t c = 0; c < s.clients; ++c) {
    double start = rng.uniform(0.0, 500.0);
    int windows = static_cast<int>(rng.uniform_int(1, 4));
    for (int w = 0; w < windows; ++w) {
      double len = rng.uniform(30.0, 5000.0);
      s.windows.push_back({c, s.catalog.sample_device(rng), start, start + len});
      start += len + rng.uniform(100.0, 5000.0);
    }
  }
  return s;
}

RunInputs random_inputs(const RandomSetup& s, const device::AvailabilityTrace& trace,
                        util::Rng& rng) {
  RunInputs in;
  in.model_free = true;
  in.client_example_counts = &s.counts;
  in.trace = &trace;
  in.catalog = &s.catalog;
  in.bandwidth = &s.bandwidth;
  in.duration.base_time_per_example_s = rng.uniform(0.001, 0.1);
  in.duration.update_bytes = static_cast<std::uint64_t>(rng.uniform_int(10'000, 2'000'000));
  in.duration.local_epochs = static_cast<int>(rng.uniform_int(1, 4));
  in.max_rounds = static_cast<std::uint64_t>(rng.uniform_int(3, 40));
  in.reparticipation_gap_s = rng.uniform(0.0, 2000.0);
  in.seed = rng.next_u64();
  return in;
}

void check_common_invariants(const RunResult& r, std::uint64_t max_rounds) {
  const sim::SimMetrics& m = r.metrics;
  // Accounting balances: every started task ends in exactly one bucket.
  EXPECT_EQ(m.tasks_started(),
            m.tasks_succeeded() + m.tasks_interrupted() + m.tasks_stale() + m.tasks_failed());
  EXPECT_LE(r.rounds, max_rounds);
  EXPECT_EQ(r.rounds, m.aggregations());
  EXPECT_GE(m.client_compute_s(), 0.0);
  EXPECT_GE(r.virtual_duration_s, 0.0);
  // Round records are time-ordered with non-negative durations, and their
  // update counts never exceed the succeeded-task total.
  std::uint64_t aggregated = 0;
  for (std::size_t i = 0; i < m.rounds().size(); ++i) {
    EXPECT_LE(m.rounds()[i].start, m.rounds()[i].end);
    if (i > 0) {
      EXPECT_LE(m.rounds()[i - 1].end, m.rounds()[i].end);
    }
    EXPECT_EQ(m.rounds()[i].round, i + 1);
    aggregated += m.rounds()[i].updates_aggregated;
  }
  EXPECT_LE(aggregated, m.tasks_succeeded());
}

class FedBuffInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FedBuffInvariantTest, AccountingBalancesForRandomConfigs) {
  util::Rng rng(GetParam());
  RandomSetup s = random_setup(rng);
  device::AvailabilityTrace trace(s.windows);
  AsyncConfig cfg;
  cfg.inputs = random_inputs(s, trace, rng);
  cfg.buffer_size = static_cast<std::size_t>(rng.uniform_int(1, 30));
  cfg.max_concurrency = static_cast<std::size_t>(rng.uniform_int(1, 200));
  cfg.max_staleness = static_cast<std::uint64_t>(rng.uniform_int(0, 50));
  RunResult r = run_fedbuff(cfg);
  check_common_invariants(r, cfg.inputs.max_rounds);
  // FedBuff: every completed round aggregated exactly buffer_size updates.
  for (const auto& round : r.metrics.rounds())
    EXPECT_EQ(round.updates_aggregated, cfg.buffer_size);
  // Succeeded tasks beyond full buffers stay below one extra buffer.
  EXPECT_LE(r.metrics.tasks_succeeded(), (r.rounds + 1) * cfg.buffer_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedBuffInvariantTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

class FedAvgInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FedAvgInvariantTest, AccountingBalancesForRandomConfigs) {
  util::Rng rng(GetParam() * 1000003);
  RandomSetup s = random_setup(rng);
  device::AvailabilityTrace trace(s.windows);
  SyncConfig cfg;
  cfg.inputs = random_inputs(s, trace, rng);
  cfg.cohort_size = static_cast<std::size_t>(rng.uniform_int(1, 25));
  cfg.overcommit = rng.uniform(1.0, 2.0);
  cfg.round_deadline_s = rng.uniform(100.0, 20000.0);
  RunResult r = run_fedavg(cfg);
  check_common_invariants(r, cfg.inputs.max_rounds);
  // Rounds never aggregate more than the cohort size, never zero, and
  // never outlive the deadline.
  for (const auto& round : r.metrics.rounds()) {
    EXPECT_GE(round.updates_aggregated, 1u);
    EXPECT_LE(round.updates_aggregated, cfg.cohort_size);
    EXPECT_LE(round.duration_s(), cfg.round_deadline_s + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgInvariantTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(RunnerEquivalence, SameUpdateTargetsSameSuccessCounts) {
  // Both runners configured for the same total update budget should deliver
  // the same number of aggregated updates (the convergence proxy used by
  // the Table 3 bench).
  util::Rng rng(9001);
  RandomSetup s = random_setup(rng);
  std::uint64_t rounds = 10;
  std::size_t k = 8;

  device::AvailabilityTrace trace_a(s.windows);
  AsyncConfig async_cfg;
  async_cfg.inputs = random_inputs(s, trace_a, rng);
  async_cfg.inputs.max_rounds = rounds;
  async_cfg.inputs.reparticipation_gap_s = 0.0;
  async_cfg.buffer_size = k;
  async_cfg.max_concurrency = 50;
  async_cfg.max_staleness = 1000;
  RunResult async_r = run_fedbuff(async_cfg);

  device::AvailabilityTrace trace_b(s.windows);
  SyncConfig sync_cfg;
  sync_cfg.inputs = async_cfg.inputs;
  sync_cfg.inputs.trace = &trace_b;
  sync_cfg.cohort_size = k;
  sync_cfg.overcommit = 1.0;
  sync_cfg.round_deadline_s = 1e9;
  RunResult sync_r = run_fedavg(sync_cfg);

  if (async_r.rounds == rounds && sync_r.rounds == rounds) {
    std::uint64_t async_updates = 0, sync_updates = 0;
    for (const auto& round : async_r.metrics.rounds()) async_updates += round.updates_aggregated;
    for (const auto& round : sync_r.metrics.rounds()) sync_updates += round.updates_aggregated;
    EXPECT_EQ(async_updates, rounds * k);
    EXPECT_EQ(sync_updates, rounds * k);
  }
}

}  // namespace
}  // namespace flint::fl
