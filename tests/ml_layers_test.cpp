#include "flint/ml/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flint/util/rng.h"

namespace flint::ml {
namespace {

/// Scalar objective used for gradient checking: L = sum_i c_i * out_i with
/// fixed pseudo-random coefficients, so dL/dout = c.
Tensor coefficient_tensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor c(rows, cols);
  for (float& v : c.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return c;
}

double objective(const Tensor& out, const Tensor& c) {
  double acc = 0.0;
  auto fo = out.flat();
  auto fc = c.flat();
  for (std::size_t i = 0; i < fo.size(); ++i) acc += static_cast<double>(fo[i]) * fc[i];
  return acc;
}

/// Check analytic input-gradients and parameter-gradients of `layer` against
/// central finite differences at the given input.
void check_layer_gradients(Layer& layer, Tensor input, double tol = 2e-2) {
  util::Rng rng(99);
  Tensor out = layer.forward(input);
  Tensor c = coefficient_tensor(out.rows(), out.cols(), rng);
  layer.backward(c);  // gradient of L = <c, out>

  // Save analytic parameter gradients (backward accumulated them).
  std::vector<std::vector<float>> analytic_param_grads;
  for (Parameter* p : layer.parameters()) {
    auto g = p->grad.flat();
    analytic_param_grads.emplace_back(g.begin(), g.end());
  }
  Tensor analytic_input_grad = [&] {
    for (Parameter* p : layer.parameters()) p->grad.zero();
    layer.forward(input);
    return layer.backward(c);
  }();

  const float eps = 1e-3f;
  // Input gradient check (sample a few coordinates to keep it fast).
  for (std::size_t i = 0; i < std::min<std::size_t>(input.size(), 12); ++i) {
    float saved = input[i];
    input[i] = saved + eps;
    double up = objective(layer.forward(input), c);
    input[i] = saved - eps;
    double down = objective(layer.forward(input), c);
    input[i] = saved;
    double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic_input_grad[i], numeric, tol)
        << "input grad mismatch at " << i;
  }
  // Parameter gradient check.
  auto params = layer.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto values = params[pi]->value.flat();
    std::size_t stride = std::max<std::size_t>(1, values.size() / 10);
    for (std::size_t i = 0; i < values.size(); i += stride) {
      float saved = values[i];
      values[i] = saved + eps;
      double up = objective(layer.forward(input), c);
      values[i] = saved - eps;
      double down = objective(layer.forward(input), c);
      values[i] = saved;
      double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic_param_grads[pi][i], numeric, tol)
          << "param " << pi << " grad mismatch at " << i;
    }
  }
}

Tensor random_input(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor t(rows, cols);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(DenseLayer, GradientsMatchFiniteDifferences) {
  util::Rng rng(1);
  DenseLayer layer(5, 3);
  layer.init(rng);
  check_layer_gradients(layer, random_input(4, 5, rng));
}

TEST(DenseLayer, ForwardKnownValues) {
  DenseLayer layer(2, 1);
  // W = [[1],[2]], b = [0.5]
  layer.parameters()[0]->value.at(0, 0) = 1.0f;
  layer.parameters()[0]->value.at(1, 0) = 2.0f;
  layer.parameters()[1]->value[0] = 0.5f;
  Tensor in(1, 2, {3.0f, 4.0f});
  Tensor out = layer.forward(in);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f + 8.0f + 0.5f);
}

TEST(DenseLayer, WrongInputWidthThrows) {
  DenseLayer layer(4, 2);
  Tensor in(1, 3);
  EXPECT_THROW(layer.forward(in), util::CheckError);
}

TEST(ReluLayer, ForwardAndGradientMask) {
  util::Rng rng(2);
  ReluLayer relu;
  Tensor in(1, 4, {-1.0f, 2.0f, 0.0f, -3.0f});
  Tensor out = relu.forward(in);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 2.0f);
  Tensor g(1, 4);
  g.fill(1.0f);
  Tensor din = relu.backward(g);
  EXPECT_EQ(din[0], 0.0f);
  EXPECT_EQ(din[1], 1.0f);
  EXPECT_EQ(din[3], 0.0f);
}

TEST(SigmoidLayer, GradientsMatchFiniteDifferences) {
  util::Rng rng(3);
  SigmoidLayer layer;
  check_layer_gradients(layer, random_input(3, 4, rng));
}

TEST(TanhLayer, GradientsMatchFiniteDifferences) {
  util::Rng rng(4);
  TanhLayer layer;
  check_layer_gradients(layer, random_input(3, 4, rng));
}

TEST(SigmoidLayer, Range) {
  SigmoidLayer s;
  Tensor in(1, 2, {-50.0f, 50.0f});
  Tensor out = s.forward(in);
  EXPECT_GE(out[0], 0.0f);
  EXPECT_LE(out[1], 1.0f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
}

TEST(EmbeddingBag, MeanPoolsTokenVectors) {
  EmbeddingBagLayer bag(4, 2);
  // Row t = (t, 10t).
  for (std::size_t t = 0; t < 4; ++t) {
    bag.parameters()[0]->value.at(t, 0) = static_cast<float>(t);
    bag.parameters()[0]->value.at(t, 1) = static_cast<float>(10 * t);
  }
  Tensor out = bag.forward({{1, 3}, {}});
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);   // mean(1, 3)
  EXPECT_FLOAT_EQ(out.at(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);   // empty token list -> zeros
}

TEST(EmbeddingBag, BackwardDistributesGradients) {
  EmbeddingBagLayer bag(3, 1);
  bag.forward({{0, 1}});
  Tensor g(1, 1);
  g[0] = 1.0f;
  bag.backward(g);
  EXPECT_FLOAT_EQ(bag.parameters()[0]->grad.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(bag.parameters()[0]->grad.at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(bag.parameters()[0]->grad.at(2, 0), 0.0f);
}

TEST(EmbeddingBag, OutOfRangeTokensClampToOov) {
  EmbeddingBagLayer bag(2, 1);
  bag.parameters()[0]->value.at(0, 0) = 5.0f;
  bag.parameters()[0]->value.at(1, 0) = 7.0f;
  Tensor out = bag.forward({{-3}, {100}});
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);  // clamps to id 0
  EXPECT_FLOAT_EQ(out.at(1, 0), 7.0f);  // clamps to last id
}

TEST(HashedBag, DeterministicAndInRange) {
  HashedBagLayer bag(16);
  for (std::int32_t t = 0; t < 100; ++t) {
    std::size_t b1 = bag.bucket_of(t);
    std::size_t b2 = bag.bucket_of(t);
    EXPECT_EQ(b1, b2);
    EXPECT_LT(b1, 16u);
  }
}

TEST(HashedBag, ForwardNormalization) {
  HashedBagLayer bag(8);
  Tensor out = bag.forward({{1, 2, 3, 4}});
  // Four tokens, each contributing 1/sqrt(4) = 0.5; total mass = 2.0 if no
  // collisions, less concentrated otherwise — l1 norm is exactly 2.0.
  double l1 = 0.0;
  for (float v : out.flat()) l1 += std::abs(v);
  EXPECT_NEAR(l1, 2.0, 1e-5);
}

TEST(Conv1dMaxPool, GradientsMatchFiniteDifferences) {
  util::Rng rng(5);
  Conv1dMaxPoolLayer layer(/*seq_len=*/6, /*in_ch=*/3, /*out_ch=*/2, /*kernel=*/2);
  layer.init(rng);
  check_layer_gradients(layer, random_input(2, 18, rng), /*tol=*/5e-2);
}

TEST(Conv1dMaxPool, OutputShape) {
  util::Rng rng(6);
  Conv1dMaxPoolLayer layer(8, 4, 5, 3);
  layer.init(rng);
  Tensor out = layer.forward(random_input(3, 32, rng));
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 5u);
}

TEST(Conv1dMaxPool, RejectsBadKernel) {
  EXPECT_THROW(Conv1dMaxPoolLayer(4, 2, 2, 5), util::CheckError);
}

TEST(Layers, CloneIsDeepCopy) {
  util::Rng rng(7);
  DenseLayer layer(3, 2);
  layer.init(rng);
  auto copy = layer.clone();
  // Mutate the original; the clone must not change.
  float before = copy->parameters()[0]->value[0];
  layer.parameters()[0]->value[0] += 10.0f;
  EXPECT_EQ(copy->parameters()[0]->value[0], before);
}

}  // namespace
}  // namespace flint::ml
