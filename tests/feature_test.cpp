#include <gtest/gtest.h>

#include "flint/feature/feature_cache.h"
#include "flint/feature/feature_catalog.h"
#include "flint/feature/feature_hashing.h"
#include "flint/feature/transform.h"
#include "flint/feature/vocab.h"

namespace flint::feature {
namespace {

// -------------------------------------------------------------------- Vocab

TEST(Vocab, BuildKeepsMostFrequent) {
  Vocab v = Vocab::build({{"rare", 1}, {"common", 100}, {"mid", 10}}, 2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.lookup("common"), 1);
  EXPECT_EQ(v.lookup("mid"), 2);
  EXPECT_EQ(v.lookup("rare"), kOovId);
  EXPECT_EQ(v.lookup("never-seen"), kOovId);
}

TEST(Vocab, TiesBrokenLexicographically) {
  Vocab v = Vocab::build({{"zebra", 5}, {"apple", 5}}, 2);
  EXPECT_EQ(v.lookup("apple"), 1);
  EXPECT_EQ(v.lookup("zebra"), 2);
}

TEST(Vocab, ReverseLookup) {
  Vocab v = Vocab::build({{"a", 2}, {"b", 1}}, 10);
  EXPECT_EQ(v.reverse_lookup(1).value(), "a");
  EXPECT_FALSE(v.reverse_lookup(0).has_value());
  EXPECT_FALSE(v.reverse_lookup(5).has_value());
}

TEST(Vocab, SerializeRoundTrip) {
  Vocab v = Vocab::build({{"alpha", 3}, {"beta", 2}, {"gamma", 1}}, 3);
  Vocab back = Vocab::parse(v.serialize());
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.lookup("beta"), v.lookup("beta"));
}

TEST(Vocab, AssetBytesCountsPayload) {
  Vocab v = Vocab::build({{"ab", 1}, {"cde", 1}}, 2);
  EXPECT_EQ(v.asset_bytes(), 2u + 1u + 3u + 1u);
  EXPECT_EQ(v.serialize().size(), v.asset_bytes());
}

TEST(Vocab, DuplicateTokenInParseThrows) {
  EXPECT_THROW(Vocab::parse("a\na\n"), util::CheckError);
}

// ------------------------------------------------------------------ Hashing

TEST(FeatureHasher, StableAndInRange) {
  FeatureHasher h(64);
  for (const char* token : {"user:123", "country:US", "x"}) {
    EXPECT_EQ(h.bucket(token), h.bucket(token));
    EXPECT_LT(h.bucket(token), 64u);
    int s = h.sign(token);
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(FeatureHasher, SaltChangesBuckets) {
  FeatureHasher a(1024, 1), b(1024, 2);
  int same = 0;
  for (int i = 0; i < 200; ++i)
    if (a.bucket("tok" + std::to_string(i)) == b.bucket("tok" + std::to_string(i))) ++same;
  EXPECT_LT(same, 10);
}

class CollisionRateTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CollisionRateTest, MeasuredNearExpected) {
  auto [vocab_size, buckets] = GetParam();
  std::vector<std::string> tokens;
  for (int i = 0; i < vocab_size; ++i) tokens.push_back("token-" + std::to_string(i));
  FeatureHasher h(static_cast<std::size_t>(buckets));
  double measured = measured_collision_rate(tokens, h);
  double expected = expected_collision_rate(static_cast<std::size_t>(vocab_size),
                                            static_cast<std::size_t>(buckets));
  EXPECT_NEAR(measured, expected, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollisionRateTest,
                         ::testing::Values(std::pair{100, 4096}, std::pair{1000, 2048},
                                           std::pair{2000, 1024}, std::pair{500, 500}));

TEST(CollisionRate, ExpectedEdgeCases) {
  EXPECT_DOUBLE_EQ(expected_collision_rate(1, 100), 0.0);
  EXPECT_GT(expected_collision_rate(10000, 10), 0.999);
}

// ---------------------------------------------------------------- LRU cache

TEST(FeatureCache, HitMissAndRecency) {
  FeatureCache cache(1024);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", {1.0f, 2.0f});
  auto v = cache.get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[1], 2.0f);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().hit_rate(), 0.5, 1e-9);
}

TEST(FeatureCache, EvictsLeastRecentlyUsed) {
  FeatureCache cache(3 * 4 * sizeof(float));  // room for 3 four-byte... 12 floats
  cache.put("a", std::vector<float>(4, 1.0f));
  cache.put("b", std::vector<float>(4, 2.0f));
  cache.put("c", std::vector<float>(4, 3.0f));
  cache.get("a");                               // refresh a; b is now LRU
  cache.put("d", std::vector<float>(4, 4.0f));  // evicts b
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_TRUE(cache.contains("d"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

class CacheBudgetTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheBudgetTest, NeverExceedsByteBudget) {
  std::uint64_t budget = GetParam();
  FeatureCache cache(budget);
  for (int i = 0; i < 200; ++i) {
    cache.put("k" + std::to_string(i), std::vector<float>(1 + i % 7, 0.5f));
    EXPECT_LE(cache.stats().bytes_used, budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, CacheBudgetTest, ::testing::Values(16u, 64u, 256u, 4096u));

TEST(FeatureCache, OversizedEntryRejected) {
  FeatureCache cache(8);
  cache.put("big", std::vector<float>(100, 1.0f));
  EXPECT_FALSE(cache.contains("big"));
  EXPECT_EQ(cache.stats().bytes_used, 0u);
}

TEST(FeatureCache, OverwriteUpdatesBytes) {
  FeatureCache cache(1024);
  cache.put("k", std::vector<float>(4, 1.0f));
  cache.put("k", std::vector<float>(2, 2.0f));
  EXPECT_EQ(cache.stats().bytes_used, 2 * sizeof(float));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ((*cache.get("k"))[0], 2.0f);
}

TEST(FeatureCache, ClearResetsContents) {
  FeatureCache cache(1024);
  cache.put("k", {1.0f});
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.contains("k"));
}

// ------------------------------------------------------------ FeatureCatalog

FeatureCatalog sample_catalog() {
  FeatureCatalog catalog;
  catalog.register_feature({.name = "device/context", .source = FeatureSource::kDevice,
                            .value_bytes = 32});
  catalog.register_feature({.name = "cloud/embedding", .source = FeatureSource::kCloud,
                            .value_bytes = 4096, .cacheable = true});
  catalog.register_feature({.name = "cloud/fresh-score", .source = FeatureSource::kCloud,
                            .value_bytes = 64, .cacheable = false});
  return catalog;
}

TEST(FeatureCatalog, RegisterAndLookup) {
  FeatureCatalog catalog = sample_catalog();
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_TRUE(catalog.has("device/context"));
  EXPECT_FALSE(catalog.has("nope"));
  EXPECT_EQ(catalog.feature("cloud/embedding").value_bytes, 4096u);
  EXPECT_THROW(catalog.feature("nope"), util::CheckError);
  EXPECT_THROW(catalog.register_feature({.name = "device/context"}), util::CheckError);
  EXPECT_THROW(catalog.register_feature({.name = ""}), util::CheckError);
}

TEST(DeviceFeatureRuntime, DeviceFeaturesAreLocal) {
  FeatureCatalog catalog = sample_catalog();
  DeviceFeatureRuntime runtime(catalog, 1 << 20);
  runtime.fetch("device/context", 42);
  EXPECT_EQ(runtime.stats().device_reads, 1u);
  EXPECT_EQ(runtime.stats().cloud_fetches, 0u);
  EXPECT_EQ(runtime.stats().network_bytes, 0u);
}

TEST(DeviceFeatureRuntime, CloudFeatureCachedOnSecondFetch) {
  FeatureCatalog catalog = sample_catalog();
  DeviceFeatureRuntime runtime(catalog, 1 << 20);
  auto first = runtime.fetch("cloud/embedding", 7);
  auto second = runtime.fetch("cloud/embedding", 7);
  EXPECT_EQ(first, second);  // deterministic value
  EXPECT_EQ(runtime.stats().cloud_fetches, 1u);
  EXPECT_EQ(runtime.stats().cache_hits, 1u);
  EXPECT_EQ(runtime.stats().network_bytes, 4096u);
}

TEST(DeviceFeatureRuntime, NonCacheableAlwaysFetches) {
  FeatureCatalog catalog = sample_catalog();
  DeviceFeatureRuntime runtime(catalog, 1 << 20);
  runtime.fetch("cloud/fresh-score", 1);
  runtime.fetch("cloud/fresh-score", 1);
  EXPECT_EQ(runtime.stats().cloud_fetches, 2u);
  EXPECT_EQ(runtime.stats().cache_hits, 0u);
}

TEST(DeviceFeatureRuntime, DistinctEntitiesDistinctValues) {
  FeatureCatalog catalog = sample_catalog();
  DeviceFeatureRuntime runtime(catalog, 1 << 20);
  EXPECT_NE(runtime.fetch("cloud/embedding", 1), runtime.fetch("cloud/embedding", 2));
}

TEST(DeviceFeatureRuntime, LatencyAccumulates) {
  FeatureCatalog catalog = sample_catalog();
  DeviceFeatureRuntime runtime(catalog, 1 << 20, /*cloud_rtt_s=*/0.1, /*bandwidth_mbps=*/1.0);
  runtime.fetch("cloud/embedding", 3);
  // RTT (0.1s) + 4096 bytes over 1 Mbps (~0.033s).
  EXPECT_GT(runtime.stats().total_latency_s, 0.1);
  EXPECT_LT(runtime.stats().total_latency_s, 0.2);
}

// ---------------------------------------------------------------- Transform

TEST(TokenEncoder, VocabVsHashing) {
  Vocab v = Vocab::build({{"apple", 5}, {"pear", 2}}, 10);
  TokenEncoder with_vocab = TokenEncoder::with_vocab(v);
  TokenEncoder with_hash = TokenEncoder::with_hashing(256);

  auto enc_v = with_vocab.encode({"apple", "unknown", "pear"});
  EXPECT_EQ(enc_v, (std::vector<std::int32_t>{1, kOovId, 2}));
  EXPECT_GT(with_vocab.asset_bytes(), 0u);
  EXPECT_EQ(with_vocab.id_space(), 3u);

  auto enc_h = with_hash.encode({"apple", "unknown", "pear"});
  EXPECT_EQ(enc_h.size(), 3u);
  for (auto id : enc_h) EXPECT_LT(id, 256);
  EXPECT_EQ(with_hash.asset_bytes(), 0u);  // hashing needs no vocab file
  EXPECT_EQ(with_hash.id_space(), 256u);
}

}  // namespace
}  // namespace flint::feature
