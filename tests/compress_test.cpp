#include "flint/compress/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "flint/util/check.h"
#include "flint/util/rng.h"

namespace flint::compress {
namespace {

std::vector<float> random_update(std::size_t n, util::Rng& rng, double scale = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

double l2_error(const std::vector<float>& a, const std::vector<float>& b) {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    sq += (static_cast<double>(a[i]) - b[i]) * (a[i] - b[i]);
  return std::sqrt(sq);
}

double l2(const std::vector<float>& a) {
  double sq = 0.0;
  for (float v : a) sq += static_cast<double>(v) * v;
  return std::sqrt(sq);
}

// ----------------------------------------------------------------- Int8

TEST(QuantizeInt8, RoundTripErrorBounded) {
  util::Rng rng(1);
  auto update = random_update(1000, rng);
  QuantizedUpdate q = quantize_int8(update);
  EXPECT_EQ(q.dim(), 1000u);
  auto back = dequantize(q);
  // Max per-coordinate error is scale/2; relative L2 error is small.
  float max_abs = 0.0f;
  for (float v : update) max_abs = std::max(max_abs, std::abs(v));
  for (std::size_t i = 0; i < update.size(); ++i)
    EXPECT_LE(std::abs(update[i] - back[i]), q.scale * 0.5f + 1e-6f);
  EXPECT_LT(l2_error(update, back) / l2(update), 0.01);
}

TEST(QuantizeInt8, PayloadIsQuarterSize) {
  util::Rng rng(2);
  auto update = random_update(4096, rng);
  QuantizedUpdate q = quantize_int8(update);
  EXPECT_EQ(q.payload_bytes(), 4096u + sizeof(float));
  EXPECT_LT(static_cast<double>(q.payload_bytes()),
            0.26 * static_cast<double>(update.size() * sizeof(float)));
}

TEST(QuantizeInt8, AllZerosStable) {
  std::vector<float> zeros(16, 0.0f);
  QuantizedUpdate q = quantize_int8(zeros);
  for (float v : dequantize(q)) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizeInt8, ExtremesMapToFullRange) {
  std::vector<float> update = {-10.0f, 10.0f, 0.0f};
  QuantizedUpdate q = quantize_int8(update);
  auto back = dequantize(q);
  EXPECT_NEAR(back[0], -10.0f, 0.1f);
  EXPECT_NEAR(back[1], 10.0f, 0.1f);
  EXPECT_EQ(back[2], 0.0f);
}

// ----------------------------------------------------------------- Top-k

TEST(TopK, KeepsLargestMagnitudes) {
  std::vector<float> update = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f};
  SparseUpdate s = top_k_sparsify(update, 2);
  ASSERT_EQ(s.indices.size(), 2u);
  EXPECT_EQ(s.indices[0], 1u);
  EXPECT_EQ(s.indices[1], 3u);
  EXPECT_EQ(s.values[0], -5.0f);
  EXPECT_EQ(s.values[1], 3.0f);
  auto dense = densify(s);
  EXPECT_EQ(dense.size(), 5u);
  EXPECT_EQ(dense[0], 0.0f);
  EXPECT_EQ(dense[1], -5.0f);
}

TEST(TopK, KLargerThanDimKeepsAll) {
  std::vector<float> update = {1.0f, 2.0f};
  SparseUpdate s = top_k_sparsify(update, 10);
  EXPECT_EQ(s.indices.size(), 2u);
  EXPECT_EQ(densify(s), update);
}

TEST(TopK, IndicesStrictlyIncreasing) {
  util::Rng rng(3);
  auto update = random_update(500, rng);
  SparseUpdate s = top_k_sparsify(update, 50);
  for (std::size_t i = 1; i < s.indices.size(); ++i)
    EXPECT_GT(s.indices[i], s.indices[i - 1]);
}

TEST(TopK, CapturesMostEnergyOnHeavyTailedUpdates) {
  // Sparse-ish update (like embedding gradients): top 10% holds most energy.
  util::Rng rng(4);
  std::vector<float> update(1000, 0.0f);
  for (int i = 0; i < 50; ++i)
    update[static_cast<std::size_t>(rng.uniform_int(0, 999))] =
        static_cast<float>(rng.normal(0.0, 5.0));
  SparseUpdate s = top_k_sparsify(update, 100);
  EXPECT_GT(l2(densify(s)) / (l2(update) + 1e-12), 0.999);
}

// ---------------------------------------------------------- ErrorFeedback

TEST(ErrorFeedback, ResidualCarriesDroppedMass) {
  ErrorFeedback ef(4);
  std::vector<float> update = {1.0f, 0.1f, 0.2f, 2.0f};
  SparseUpdate s = ef.compress(update, 2);
  // Kept: indices 0 and 3. Residual holds the dropped 0.1 and 0.2.
  EXPECT_EQ(ef.residual()[0], 0.0f);
  EXPECT_FLOAT_EQ(ef.residual()[1], 0.1f);
  EXPECT_FLOAT_EQ(ef.residual()[2], 0.2f);
  EXPECT_EQ(ef.residual()[3], 0.0f);
  (void)s;
}

TEST(ErrorFeedback, SmallCoordinatesEventuallyTransmitted) {
  // A constant small coordinate must accumulate and eventually be sent.
  ErrorFeedback ef(3);
  bool sent_small = false;
  for (int step = 0; step < 30; ++step) {
    std::vector<float> update = {1.0f, 0.1f, -1.0f};
    SparseUpdate s = ef.compress(update, 2);
    for (std::uint32_t idx : s.indices)
      if (idx == 1) sent_small = true;
  }
  EXPECT_TRUE(sent_small);
}

TEST(ErrorFeedback, ResetClearsState) {
  ErrorFeedback ef(2);
  std::vector<float> update = {1.0f, 0.5f};
  ef.compress(update, 1);
  ef.reset();
  for (float v : ef.residual()) EXPECT_EQ(v, 0.0f);
}

TEST(ErrorFeedback, DimMismatchThrows) {
  ErrorFeedback ef(3);
  std::vector<float> wrong = {1.0f};
  EXPECT_THROW(ef.compress(wrong, 1), util::CheckError);
}

// Property sweep: the symmetric int8 scheme guarantees per-element
// |x - dequantize(quantize(x))| <= scale/2 — max-abs/127 scaling means no
// value saturates, so the only loss is round-to-nearest. Holds across sizes
// (SIMD remainder lanes) and magnitudes (tiny through huge updates); the
// epsilon term absorbs the one float rounding in q * scale.
TEST(QuantizeInt8, RoundTripErrorWithinHalfScaleProperty) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{127},
                        std::size_t{128}, std::size_t{1000}}) {
    for (double magnitude : {1e-6, 1.0, 3e4}) {
      util::Rng rng(9000 + n + static_cast<std::uint64_t>(magnitude));
      auto update = random_update(n, rng, magnitude);
      QuantizedUpdate q = quantize_int8(update);
      auto back = dequantize(q);
      ASSERT_EQ(back.size(), n);
      const float bound = q.scale * 0.5f * (1.0f + 1e-5f);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(update[i] - back[i]), bound)
            << "element " << i << " at n=" << n << " magnitude=" << magnitude;
    }
  }
}

// Error-feedback accumulation is deterministic: two instances fed the same
// update stream produce bit-identical sparse updates and residuals at every
// step. The leader's fixed-order reduction (DESIGN.md §10) relies on the
// executor-side compression being a pure function of its inputs.
TEST(ErrorFeedback, AccumulationDeterministicAcrossInstances) {
  constexpr std::size_t kDim = 64;
  util::Rng rng(321);
  std::vector<std::vector<float>> stream;
  for (int step = 0; step < 25; ++step) stream.push_back(random_update(kDim, rng));
  // Exact ties in magnitude exercise the tie-break ordering too.
  stream[5].assign(kDim, 0.25f);

  ErrorFeedback a(kDim), b(kDim);
  for (const auto& update : stream) {
    SparseUpdate sa = a.compress(update, 16);
    SparseUpdate sb = b.compress(update, 16);
    ASSERT_EQ(sa.indices, sb.indices);
    ASSERT_EQ(sa.values.size(), sb.values.size());
    EXPECT_EQ(0, std::memcmp(sa.values.data(), sb.values.data(),
                             sa.values.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(a.residual().data(), b.residual().data(),
                             kDim * sizeof(float)));
  }
}

// ------------------------------------------------------- apply_compression

class CompressionRoundTripTest : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CompressionRoundTripTest, ShrinksPayloadKeepsDirection) {
  util::Rng rng(5);
  auto original = random_update(2048, rng);
  auto update = original;
  CompressionConfig cfg;
  cfg.kind = GetParam();
  cfg.top_k_fraction = 0.25;
  std::size_t bytes = apply_compression(update, cfg);
  EXPECT_EQ(update.size(), original.size());
  std::size_t raw = original.size() * sizeof(float);
  if (cfg.kind == CompressionKind::kNone) {
    EXPECT_EQ(bytes, raw);
    EXPECT_EQ(update, original);
  } else {
    EXPECT_LT(bytes, raw);
    // Cosine similarity with the original stays high.
    double dot = 0.0;
    for (std::size_t i = 0; i < update.size(); ++i)
      dot += static_cast<double>(update[i]) * original[i];
    EXPECT_GT(dot / (l2(update) * l2(original)), 0.4);
  }
  EXPECT_EQ(bytes, compressed_bytes(original.size(), cfg));
}

INSTANTIATE_TEST_SUITE_P(Kinds, CompressionRoundTripTest,
                         ::testing::Values(CompressionKind::kNone, CompressionKind::kInt8,
                                           CompressionKind::kTopK));

TEST(CompressedBytes, TopKScalesWithFraction) {
  CompressionConfig cfg;
  cfg.kind = CompressionKind::kTopK;
  cfg.top_k_fraction = 0.1;
  std::size_t small = compressed_bytes(10000, cfg);
  cfg.top_k_fraction = 0.5;
  std::size_t large = compressed_bytes(10000, cfg);
  EXPECT_LT(small, large);
  EXPECT_NEAR(static_cast<double>(large) / small, 5.0, 0.1);
}

}  // namespace
}  // namespace flint::compress
