#include <gtest/gtest.h>

#include <cmath>

#include "flint/privacy/dp.h"
#include "flint/privacy/secure_agg.h"
#include "flint/util/stats.h"

namespace flint::privacy {
namespace {

double l2(const std::vector<float>& v) {
  double sq = 0.0;
  for (float x : v) sq += static_cast<double>(x) * x;
  return std::sqrt(sq);
}

// ------------------------------------------------------------------------ DP

TEST(Dp, ClipBoundsNorm) {
  std::vector<float> update = {3.0f, 4.0f};  // norm 5
  double pre = clip_update(update, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(l2(update), 1.0, 1e-5);
  // Direction preserved.
  EXPECT_NEAR(update[0] / update[1], 0.75, 1e-5);
}

TEST(Dp, ClipLeavesSmallUpdates) {
  std::vector<float> update = {0.1f, 0.1f};
  clip_update(update, 10.0);
  EXPECT_FLOAT_EQ(update[0], 0.1f);
}

class ClipPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ClipPropertyTest, PostNormNeverExceedsBound) {
  double bound = GetParam();
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> update(50);
    for (float& v : update) v = static_cast<float>(rng.normal(0.0, 5.0));
    clip_update(update, bound);
    EXPECT_LE(l2(update), bound * (1.0 + 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, ClipPropertyTest, ::testing::Values(0.1, 1.0, 10.0));

TEST(Dp, GaussianNoiseHasRequestedStddev) {
  util::Rng rng(2);
  std::vector<float> update(50000, 0.0f);
  add_gaussian_noise(update, 0.5, rng);
  util::RunningStats s;
  for (float v : update) s.add(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 0.5, 0.01);
}

TEST(Dp, ZeroStddevIsNoop) {
  util::Rng rng(3);
  std::vector<float> update = {1.0f, 2.0f};
  add_gaussian_noise(update, 0.0, rng);
  EXPECT_EQ(update, (std::vector<float>{1.0f, 2.0f}));
}

TEST(Dp, ApplyDpClipsThenNoises) {
  util::Rng rng(4);
  DpConfig cfg;
  cfg.clip_norm = 1.0;
  cfg.noise_multiplier = 0.0001;  // nearly deterministic
  std::vector<float> update = {30.0f, 40.0f};
  double pre = apply_dp(update, cfg, 10, rng);
  EXPECT_NEAR(pre, 50.0, 1e-4);
  EXPECT_NEAR(l2(update), 1.0, 0.01);
}

TEST(DpAccountant, EpsilonGrowsAsSqrtRounds) {
  DpConfig cfg;
  cfg.noise_multiplier = 1.0;
  cfg.delta = 1e-6;
  DpAccountant acc(cfg, 0.01);
  EXPECT_DOUBLE_EQ(acc.epsilon(), 0.0);
  acc.record_rounds(100);
  double e100 = acc.epsilon();
  acc.record_rounds(300);
  double e400 = acc.epsilon();
  EXPECT_NEAR(e400 / e100, 2.0, 1e-9);  // sqrt(400/100)
}

TEST(DpAccountant, MoreNoiseLessEpsilon) {
  DpConfig loud;
  loud.noise_multiplier = 0.5;
  DpConfig quiet;
  quiet.noise_multiplier = 2.0;
  DpAccountant a(loud, 0.01), b(quiet, 0.01);
  a.record_rounds(100);
  b.record_rounds(100);
  EXPECT_GT(a.epsilon(), b.epsilon());
}

TEST(DpAccountant, RoundsUntilInvertsEpsilon) {
  DpConfig cfg;
  cfg.noise_multiplier = 1.0;
  cfg.delta = 1e-6;
  DpAccountant acc(cfg, 0.01);
  std::uint64_t budget_rounds = acc.rounds_until(1.0);
  ASSERT_GT(budget_rounds, 0u);
  acc.record_rounds(budget_rounds);
  EXPECT_LE(acc.epsilon(), 1.0 + 1e-6);
  acc.record_rounds(budget_rounds);  // double it: now over budget
  EXPECT_GT(acc.epsilon(), 1.0);
  EXPECT_EQ(acc.rounds_until(1.0), 0u);
}

TEST(DpAccountant, RejectsBadConfig) {
  DpConfig bad;
  bad.noise_multiplier = 0.0;
  EXPECT_THROW(DpAccountant(bad, 0.1), util::CheckError);
  DpConfig ok;
  EXPECT_THROW(DpAccountant(ok, 0.0), util::CheckError);
  EXPECT_THROW(DpAccountant(ok, 1.5), util::CheckError);
}

// -------------------------------------------------------------------- SecAgg

TEST(TeeAggregator, WeightedMeanAndReset) {
  TeeConfig cfg;
  TeeSecureAggregator tee(cfg, 2);
  std::vector<float> a = {1.0f, 2.0f};
  std::vector<float> b = {3.0f, 6.0f};
  tee.accumulate(a, 1.0);
  tee.accumulate(b, 3.0);
  auto mean = tee.finalize();
  EXPECT_NEAR(mean[0], (1.0 + 9.0) / 4.0, 1e-5);
  EXPECT_NEAR(mean[1], (2.0 + 18.0) / 4.0, 1e-5);
  EXPECT_EQ(tee.updates_received(), 2u);
  // After finalize the accumulator is reset.
  EXPECT_THROW(tee.finalize(), util::CheckError);
}

TEST(TeeAggregator, DimMismatchThrows) {
  TeeSecureAggregator tee(TeeConfig{}, 3);
  std::vector<float> wrong = {1.0f};
  EXPECT_THROW(tee.accumulate(wrong), util::CheckError);
}

TEST(TeeAggregator, BandwidthAccounting) {
  TeeConfig cfg;
  cfg.bandwidth_mbps = 8.0;  // 1 MB/s
  cfg.attestation_s = 0.25;
  cfg.per_update_overhead_bytes = 0;
  TeeSecureAggregator tee(cfg, 250000);  // 1 MB updates
  std::vector<float> update(250000, 0.0f);
  tee.accumulate(update);
  EXPECT_EQ(tee.bytes_received(), 1000000u);
  // 1 MB at 1 MB/s plus one attestation.
  EXPECT_NEAR(tee.busy_seconds(), 1.0 + 0.25, 1e-6);
}

TEST(TeeAggregator, CapacityCheckMatchesPaperProjection) {
  // §3.5: 3.53 updates/s x 0.76MB updates ~= 2.68 MB/s, within a 24 Mbps TEE.
  TeeConfig cfg;
  cfg.bandwidth_mbps = 24.0;
  cfg.per_update_overhead_bytes = 0;
  TeeSecureAggregator tee(cfg, 1);
  double mbps = tee.required_mbytes_per_s(3.53, 760000);
  EXPECT_NEAR(mbps, 2.68, 0.02);
  EXPECT_TRUE(tee.within_capacity(3.53, 760000));
  EXPECT_FALSE(tee.within_capacity(35.3, 760000));
}

TEST(MaskUpdates, SumPreservedIndividualObscured) {
  util::Rng rng(5);
  std::vector<std::vector<float>> updates(4, std::vector<float>(16));
  for (auto& u : updates)
    for (float& v : u) v = static_cast<float>(rng.normal());

  auto masked = mask_updates(updates, /*session_seed=*/777);
  ASSERT_EQ(masked.size(), 4u);

  // Property 1: the sum over clients is unchanged (masks cancel pairwise).
  for (std::size_t d = 0; d < 16; ++d) {
    double raw_sum = 0.0, masked_sum = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      raw_sum += updates[i][d];
      masked_sum += masked[i][d];
    }
    EXPECT_NEAR(masked_sum, raw_sum, 1e-3);
  }
  // Property 2: each individual masked update differs from its raw form.
  for (std::size_t i = 0; i < 4; ++i) {
    double diff = 0.0;
    for (std::size_t d = 0; d < 16; ++d) diff += std::abs(masked[i][d] - updates[i][d]);
    EXPECT_GT(diff, 0.5);
  }
}

TEST(MaskUpdates, SingleClientUnchanged) {
  std::vector<std::vector<float>> updates = {{1.0f, 2.0f}};
  auto masked = mask_updates(updates, 1);
  EXPECT_EQ(masked[0], updates[0]);  // no pairs, no masks
}

TEST(MaskUpdates, RaggedUpdatesThrow) {
  std::vector<std::vector<float>> updates = {{1.0f}, {1.0f, 2.0f}};
  EXPECT_THROW(mask_updates(updates, 1), util::CheckError);
}

}  // namespace
}  // namespace flint::privacy
