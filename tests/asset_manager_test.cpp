#include "flint/feature/asset_manager.h"

#include <gtest/gtest.h>

#include "flint/util/check.h"

namespace flint::feature {
namespace {

TEST(AssetRegistry, PublishAndVersioning) {
  AssetRegistry registry;
  EXPECT_EQ(registry.publish("vocab/geo", 1'280'000, "v1-sum"), 1);
  EXPECT_EQ(registry.publish("vocab/geo", 1'300'000, "v2-sum"), 2);
  EXPECT_EQ(registry.version_count("vocab/geo"), 2u);
  auto latest = registry.latest("vocab/geo");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2);
  EXPECT_EQ(latest->bytes, 1'300'000u);
  EXPECT_FALSE(registry.latest("missing").has_value());
  EXPECT_THROW(registry.publish("", 1, "x"), util::CheckError);
  EXPECT_THROW(registry.publish("a", 0, "x"), util::CheckError);
}

TEST(DeviceAssets, FirstPullDownloadsThenCaches) {
  AssetRegistry registry;
  registry.publish("vocab/title", 500'000, "t1");
  DeviceAssetManager device(registry, 2'000'000);

  auto v1 = device.ensure("vocab/title");
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(device.stats().downloads, 1u);
  EXPECT_EQ(device.stats().bytes_downloaded, 500'000u);
  EXPECT_TRUE(device.is_current("vocab/title"));

  device.ensure("vocab/title");  // cached and current: no new download
  EXPECT_EQ(device.stats().downloads, 1u);
  EXPECT_EQ(device.stats().up_to_date_hits, 1u);
}

TEST(DeviceAssets, RefreshOnNewVersion) {
  AssetRegistry registry;
  registry.publish("vocab/geo", 1'000'000, "g1");
  DeviceAssetManager device(registry, 4'000'000);
  device.ensure("vocab/geo");
  EXPECT_TRUE(device.is_current("vocab/geo"));

  registry.publish("vocab/geo", 1'200'000, "g2");  // cloud publishes update
  EXPECT_FALSE(device.is_current("vocab/geo"));
  auto v = device.ensure("vocab/geo");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 2);
  EXPECT_EQ(device.stats().refreshes, 1u);
  EXPECT_EQ(device.stats().downloads, 2u);
  EXPECT_EQ(device.storage_used(), 1'200'000u);  // old copy replaced
}

TEST(DeviceAssets, StorageBudgetEvictsLeastRecentlyUsed) {
  AssetRegistry registry;
  registry.publish("a", 900, "a1");
  registry.publish("b", 900, "b1");
  registry.publish("c", 900, "c1");
  DeviceAssetManager device(registry, 2000);  // room for two
  device.ensure("a");
  device.ensure("b");
  device.ensure("a");  // refresh a's recency; b is LRU
  device.ensure("c");  // evicts b
  EXPECT_TRUE(device.is_current("a"));
  EXPECT_FALSE(device.is_current("b"));
  EXPECT_TRUE(device.is_current("c"));
  EXPECT_EQ(device.stats().evictions, 1u);
  EXPECT_LE(device.storage_used(), 2000u);
}

TEST(DeviceAssets, OversizedAssetNeverFits) {
  AssetRegistry registry;
  registry.publish("huge-embedding", 500'000'000, "h1");  // the 500MB table
  DeviceAssetManager device(registry, 10'000'000);        // 10MB budget
  EXPECT_FALSE(device.ensure("huge-embedding").has_value());
  EXPECT_EQ(device.stats().downloads, 0u);
  EXPECT_EQ(device.storage_used(), 0u);
}

TEST(DeviceAssets, UnknownAssetReturnsNothing) {
  AssetRegistry registry;
  DeviceAssetManager device(registry, 1000);
  EXPECT_FALSE(device.ensure("nope").has_value());
  EXPECT_EQ(device.stats().requests, 1u);
}

}  // namespace
}  // namespace flint::feature
