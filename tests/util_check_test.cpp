#include "flint/util/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

// Compiled with NDEBUG in util_check_ndebug_helper.cpp: returns true when
// FLINT_DCHECK(false) compiled away there.
namespace flint::test {
bool dcheck_elides_in_ndebug();
bool dcheck_skips_side_effects_in_ndebug();
}  // namespace flint::test

namespace flint::util {
namespace {

std::string failure_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return "";
}

TEST(Check, PassingChecksAreSilent) {
  EXPECT_NO_THROW(FLINT_CHECK(true));
  EXPECT_NO_THROW(FLINT_CHECK_MSG(1 + 1 == 2, "math"));
  EXPECT_NO_THROW(FLINT_CHECK_EQ(2, 2));
  EXPECT_NO_THROW(FLINT_CHECK_NE(2, 3));
  EXPECT_NO_THROW(FLINT_CHECK_LT(2, 3));
  EXPECT_NO_THROW(FLINT_CHECK_LE(3, 3));
  EXPECT_NO_THROW(FLINT_CHECK_GT(3, 2));
  EXPECT_NO_THROW(FLINT_CHECK_GE(3, 3));
  EXPECT_NO_THROW(FLINT_CHECK_FINITE(1.5));
  EXPECT_NO_THROW(FLINT_CHECK_PROB(0.0));
  EXPECT_NO_THROW(FLINT_CHECK_PROB(1.0));
}

TEST(Check, ThrowsCheckErrorSubclassOfRuntimeError) {
  EXPECT_THROW(FLINT_CHECK(false), CheckError);
  EXPECT_THROW(FLINT_CHECK(false), std::runtime_error);
  EXPECT_THROW(FLINT_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(FLINT_CHECK_FINITE(std::nan("")), CheckError);
  EXPECT_THROW(FLINT_CHECK_PROB(1.5), CheckError);
}

TEST(Check, MessageCarriesExpressionFileAndLine) {
  std::string msg = failure_message([] { FLINT_CHECK(2 < 1); });
  EXPECT_NE(msg.find("2 < 1"), std::string::npos);
  EXPECT_NE(msg.find("util_check_test.cpp"), std::string::npos);
}

TEST(Check, CheckMsgAppendsStreamedContext) {
  std::string msg = failure_message([] { FLINT_CHECK_MSG(false, "round " << 7 << " bad"); });
  EXPECT_NE(msg.find("round 7 bad"), std::string::npos);
}

TEST(Check, ComparisonMacrosCaptureBothOperands) {
  double now = 5.25;
  double event_time = 3.5;
  std::string msg = failure_message([&] { FLINT_CHECK_GE(event_time, now); });
  EXPECT_NE(msg.find("event_time >= now"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3.5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("5.25"), std::string::npos) << msg;
}

TEST(Check, ComparisonMacrosWorkAcrossTypes) {
  std::size_t dim = 4;
  EXPECT_NO_THROW(FLINT_CHECK_EQ(dim, std::size_t{4}));
  std::string msg = failure_message([&] { FLINT_CHECK_EQ(dim, std::size_t{8}); });
  EXPECT_NE(msg.find("4 == 8"), std::string::npos) << msg;
}

TEST(Check, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  FLINT_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(FLINT_CHECK_GT(next(), 10), CheckError);
  EXPECT_EQ(calls, 2);
}

TEST(Check, FiniteRejectsInfinityAndNan) {
  EXPECT_THROW(FLINT_CHECK_FINITE(std::numeric_limits<double>::infinity()), CheckError);
  EXPECT_THROW(FLINT_CHECK_FINITE(-std::numeric_limits<double>::infinity()), CheckError);
  EXPECT_THROW(FLINT_CHECK_FINITE(std::numeric_limits<float>::quiet_NaN()), CheckError);
  std::string msg = failure_message(
      [] { FLINT_CHECK_FINITE(std::numeric_limits<double>::infinity()); });
  EXPECT_NE(msg.find("isfinite"), std::string::npos) << msg;
  EXPECT_NE(msg.find("inf"), std::string::npos) << msg;
}

TEST(Check, ProbRejectsOutOfRangeAndNan) {
  EXPECT_THROW(FLINT_CHECK_PROB(-0.001), CheckError);
  EXPECT_THROW(FLINT_CHECK_PROB(1.001), CheckError);
  EXPECT_THROW(FLINT_CHECK_PROB(std::nan("")), CheckError);
  std::string msg = failure_message([] { FLINT_CHECK_PROB(2.5); });
  EXPECT_NE(msg.find("2.5"), std::string::npos) << msg;
}

TEST(Check, SmallIntegerOperandsPrintAsNumbers) {
  std::uint8_t version = 7;
  std::string msg = failure_message([&] { FLINT_CHECK_EQ(version, std::uint8_t{9}); });
  EXPECT_NE(msg.find('7'), std::string::npos) << msg;
  EXPECT_NE(msg.find('9'), std::string::npos) << msg;
}

TEST(Check, DcheckActiveInDebugBuilds) {
#ifdef NDEBUG
  EXPECT_NO_THROW(FLINT_DCHECK(false));
  EXPECT_NO_THROW(FLINT_DCHECK_EQ(1, 2));
#else
  EXPECT_THROW(FLINT_DCHECK(false), CheckError);
  EXPECT_THROW(FLINT_DCHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(FLINT_DCHECK_LT(2, 1), CheckError);
#endif
}

TEST(Check, DcheckElidesUnderNdebug) {
  // The helper TU is always compiled with NDEBUG, regardless of this TU's
  // build type, so elision is observable from any build.
  EXPECT_TRUE(test::dcheck_elides_in_ndebug());
  EXPECT_TRUE(test::dcheck_skips_side_effects_in_ndebug());
}

}  // namespace
}  // namespace flint::util
