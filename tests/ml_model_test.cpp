#include "flint/ml/model.h"

#include <gtest/gtest.h>

#include "flint/ml/loss.h"
#include "flint/ml/model_zoo.h"
#include "flint/util/rng.h"

namespace flint::ml {
namespace {

Batch dense_batch(std::size_t n, std::size_t dim, util::Rng& rng) {
  std::vector<Example> examples(n);
  for (auto& e : examples) {
    e.dense.resize(dim);
    for (float& v : e.dense) v = static_cast<float>(rng.normal());
    e.label = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    e.label2 = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  return Batch::from_examples(examples, dim);
}

Batch token_batch(std::size_t n, std::size_t vocab, util::Rng& rng) {
  std::vector<Example> examples(n);
  for (auto& e : examples) {
    e.tokens.resize(5);
    for (auto& t : e.tokens)
      t = static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(vocab) - 1));
    e.label = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  return Batch::from_examples(examples, 0);
}

TEST(FeedForwardModel, FlatParameterRoundTrip) {
  util::Rng rng(1);
  FeedForwardConfig cfg;
  cfg.dense_dim = 6;
  cfg.hidden = {4};
  FeedForwardModel model(cfg);
  model.init(rng);
  auto flat = model.get_flat_parameters();
  EXPECT_EQ(flat.size(), model.parameter_count());
  // Perturb, restore, verify.
  auto perturbed = flat;
  for (float& v : perturbed) v += 1.0f;
  model.set_flat_parameters(perturbed);
  EXPECT_EQ(model.get_flat_parameters(), perturbed);
  model.set_flat_parameters(flat);
  EXPECT_EQ(model.get_flat_parameters(), flat);
}

TEST(FeedForwardModel, SetFlatRejectsWrongSize) {
  FeedForwardConfig cfg;
  cfg.dense_dim = 3;
  FeedForwardModel model(cfg);
  std::vector<float> wrong(model.parameter_count() + 1, 0.0f);
  EXPECT_THROW(model.set_flat_parameters(wrong), util::CheckError);
}

TEST(FeedForwardModel, CloneProducesIdenticalOutputs) {
  util::Rng rng(2);
  FeedForwardConfig cfg;
  cfg.dense_dim = 5;
  cfg.hidden = {8, 4};
  FeedForwardModel model(cfg);
  model.init(rng);
  auto clone = model.clone();
  Batch batch = dense_batch(6, 5, rng);
  Tensor a = model.forward(batch);
  Tensor b = clone->forward(batch);
  EXPECT_TRUE(a == b);
}

TEST(FeedForwardModel, ZeroGradClearsGradients) {
  util::Rng rng(3);
  FeedForwardConfig cfg;
  cfg.dense_dim = 4;
  cfg.hidden = {3};
  FeedForwardModel model(cfg);
  model.init(rng);
  Batch batch = dense_batch(4, 4, rng);
  Tensor logits = model.forward(batch);
  auto loss = bce_with_logits(logits, batch.labels);
  model.backward(loss.d_logits);
  bool any_nonzero = false;
  for (float g : model.get_flat_gradients())
    if (g != 0.0f) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  model.zero_grad();
  for (float g : model.get_flat_gradients()) EXPECT_EQ(g, 0.0f);
}

TEST(FeedForwardModel, EmbeddingFrontEndWithDense) {
  util::Rng rng(4);
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kEmbedding;
  cfg.vocab = 20;
  cfg.embed_dim = 6;
  cfg.dense_dim = 3;
  cfg.hidden = {5};
  FeedForwardModel model(cfg);
  model.init(rng);
  std::vector<Example> examples(3);
  for (auto& e : examples) {
    e.dense = {0.1f, 0.2f, 0.3f};
    e.tokens = {1, 5, 7};
  }
  Batch batch = Batch::from_examples(examples, 3);
  Tensor out = model.forward(batch);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 1u);
  // Backward must run without throwing and touch the embedding table.
  Tensor g(3, 1);
  g.fill(1.0f);
  model.zero_grad();
  model.backward(g);
  float table_grad_mass = 0.0f;
  for (float v : model.parameters()[0]->grad.flat()) table_grad_mass += std::abs(v);
  EXPECT_GT(table_grad_mass, 0.0f);
}

TEST(FeedForwardModel, HashingFrontEndForward) {
  util::Rng rng(5);
  FeedForwardConfig cfg;
  cfg.front_end = FrontEnd::kHashing;
  cfg.hash_buckets = 32;
  cfg.hidden = {4};
  FeedForwardModel model(cfg);
  model.init(rng);
  Batch batch = token_batch(4, 100, rng);
  Tensor out = model.forward(batch);
  EXPECT_EQ(out.rows(), 4u);
  Tensor g(4, 1);
  g.fill(0.5f);
  EXPECT_NO_THROW(model.backward(g));
}

TEST(FeedForwardModel, MultiTaskHeads) {
  util::Rng rng(6);
  FeedForwardConfig cfg;
  cfg.dense_dim = 4;
  cfg.hidden = {6};
  cfg.heads = 2;
  FeedForwardModel model(cfg);
  model.init(rng);
  EXPECT_EQ(model.heads(), 2u);
  Batch batch = dense_batch(5, 4, rng);
  Tensor out = model.forward(batch);
  EXPECT_EQ(out.cols(), 2u);
  auto loss = multitask_bce(out, {batch.labels, batch.labels2});
  EXPECT_NO_THROW(model.backward(loss.d_logits));
}

TEST(ConvTextModel, ForwardBackwardShapes) {
  util::Rng rng(7);
  ConvTextConfig cfg;
  cfg.vocab = 50;
  cfg.embed_dim = 8;
  cfg.seq_len = 6;
  cfg.conv_channels = 4;
  cfg.kernel = 3;
  cfg.hidden = {5};
  ConvTextModel model(cfg);
  model.init(rng);
  Batch batch = token_batch(3, 50, rng);
  Tensor out = model.forward(batch);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 1u);
  Tensor g(3, 1);
  g.fill(1.0f);
  model.zero_grad();
  EXPECT_NO_THROW(model.backward(g));
}

TEST(ConvTextModel, CloneIndependent) {
  util::Rng rng(8);
  ConvTextConfig cfg;
  cfg.vocab = 30;
  cfg.embed_dim = 4;
  cfg.seq_len = 5;
  cfg.conv_channels = 3;
  cfg.kernel = 2;
  ConvTextModel model(cfg);
  model.init(rng);
  auto clone = model.clone();
  auto before = clone->get_flat_parameters();
  auto mutated = model.get_flat_parameters();
  mutated[0] += 5.0f;
  model.set_flat_parameters(mutated);
  EXPECT_EQ(clone->get_flat_parameters(), before);
}

// --- Zoo parameter counts: architecture fidelity against Table 5. ---

struct ZooExpectation {
  char id;
  std::size_t params;
};

class ZooParamTest : public ::testing::TestWithParam<ZooExpectation> {};

TEST_P(ZooParamTest, ParameterCountMatchesPaperScale) {
  auto [id, expected] = GetParam();
  util::Rng rng(9);
  auto model = build_zoo_model(id, rng);
  EXPECT_EQ(model->parameter_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(Table5, ZooParamTest,
                         ::testing::Values(ZooExpectation{'A', 1497},     // paper: 1.51k
                                           ZooExpectation{'B', 188827},   // paper: 189k
                                           ZooExpectation{'C', 208121},   // paper: 208k
                                           ZooExpectation{'D', 389969},   // paper: 390k
                                           ZooExpectation{'E', 922018})); // paper: 922k

TEST(ModelZoo, SpecLookup) {
  EXPECT_EQ(model_spec('A').description, "Tiny Neural Net");
  EXPECT_EQ(model_zoo().size(), 5u);
  EXPECT_THROW(model_spec('Z'), util::CheckError);
}

TEST(ModelZoo, UpdateBytesMatchesParamCount) {
  util::Rng rng(10);
  auto model = build_zoo_model('A', rng);
  EXPECT_EQ(model->update_bytes(), model->parameter_count() * sizeof(float));
}

TEST(ModelZoo, AllModelsForwardOnAppropriateData) {
  util::Rng rng(11);
  for (const auto& spec : model_zoo()) {
    auto model = build_zoo_model(spec.id, rng);
    std::vector<Example> examples(2);
    for (auto& e : examples) {
      e.dense.resize(32, 0.1f);
      e.tokens = {1, 2, 3};
    }
    // Models A and E consume 32 dense features; B, C, D are token-only.
    std::size_t dense_dim = (spec.id == 'A' || spec.id == 'E') ? 32 : 0;
    Batch batch = Batch::from_examples(examples, dense_dim);
    Tensor out = model->forward(batch);
    EXPECT_EQ(out.rows(), 2u) << "model " << spec.id;
  }
}

}  // namespace
}  // namespace flint::ml
