#include "flint/data/synthetic_tasks.h"

#include <gtest/gtest.h>

#include <set>

#include "flint/util/stats.h"

namespace flint::data {
namespace {

SyntheticTaskConfig small_config(Domain domain) {
  SyntheticTaskConfig cfg;
  cfg.domain = domain;
  cfg.clients = 100;
  cfg.mean_records = 15.0;
  cfg.std_records = 10.0;
  cfg.max_records = 120;
  cfg.dense_dim = 6;
  cfg.vocab = 80;
  cfg.test_examples = 400;
  return cfg;
}

TEST(SyntheticTasks, DomainNames) {
  EXPECT_STREQ(domain_name(Domain::kAds), "ads");
  EXPECT_STREQ(domain_name(Domain::kMessaging), "messaging");
  EXPECT_STREQ(domain_name(Domain::kSearch), "search");
}

TEST(SyntheticTasks, AdsShapeAndLabels) {
  util::Rng rng(1);
  auto cfg = small_config(Domain::kAds);
  cfg.label_ratio = 0.28;
  FederatedTask task = make_synthetic_task(cfg, rng);
  EXPECT_EQ(task.train.client_count(), 100u);
  EXPECT_GE(task.test.size(), cfg.test_examples);
  double positives = 0.0, total = 0.0;
  for (const auto& c : task.train.clients()) {
    for (const auto& e : c.examples) {
      ASSERT_EQ(e.dense.size(), 6u);
      positives += e.label;
      total += 1.0;
    }
  }
  EXPECT_NEAR(positives / total, 0.28, 0.08);
  EXPECT_STREQ(task.metric_name(), "AUPR");
  EXPECT_EQ(task.loss_kind(), LossKind::kBinaryCrossEntropy);
  EXPECT_EQ(task.batch_dense_dim(), 6u);
}

TEST(SyntheticTasks, MessagingTokensInVocab) {
  util::Rng rng(2);
  auto cfg = small_config(Domain::kMessaging);
  cfg.label_ratio = 0.05;
  FederatedTask task = make_synthetic_task(cfg, rng);
  for (const auto& c : task.train.clients()) {
    for (const auto& e : c.examples) {
      EXPECT_FALSE(e.tokens.empty());
      for (auto t : e.tokens) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, static_cast<std::int32_t>(cfg.vocab));
      }
    }
  }
  EXPECT_EQ(task.batch_dense_dim(), 0u);
}

TEST(SyntheticTasks, MessagingLabelRatioNearTarget) {
  util::Rng rng(3);
  auto cfg = small_config(Domain::kMessaging);
  cfg.clients = 200;
  cfg.label_ratio = 0.05;
  FederatedTask task = make_synthetic_task(cfg, rng);
  double positives = 0.0, total = 0.0;
  for (const auto& c : task.train.clients())
    for (const auto& e : c.examples) {
      positives += e.label;
      total += 1.0;
    }
  EXPECT_NEAR(positives / total, 0.05, 0.03);
  EXPECT_GT(positives, 0.0);  // regression: bias miscalibration zeroed labels
}

TEST(SyntheticTasks, SearchGroupsAreComplete) {
  util::Rng rng(4);
  auto cfg = small_config(Domain::kSearch);
  cfg.candidates_per_group = 8;
  FederatedTask task = make_synthetic_task(cfg, rng);
  EXPECT_EQ(task.loss_kind(), LossKind::kPairwiseRanking);
  EXPECT_STREQ(task.metric_name(), "NDCG@10");
  // Each group id appears exactly candidates_per_group times, with one
  // grade-2 item.
  std::map<std::int32_t, std::vector<float>> groups;
  for (const auto& c : task.train.clients())
    for (const auto& e : c.examples) groups[e.group].push_back(e.label);
  for (const auto& [gid, labels] : groups) {
    EXPECT_EQ(labels.size(), 8u);
    EXPECT_EQ(std::count(labels.begin(), labels.end(), 2.0f), 1);
    EXPECT_EQ(std::count(labels.begin(), labels.end(), 1.0f), 2);
  }
}

TEST(SyntheticTasks, GroupIdsDontCollideAcrossClients) {
  util::Rng rng(5);
  auto cfg = small_config(Domain::kSearch);
  FederatedTask task = make_synthetic_task(cfg, rng);
  std::map<std::int32_t, std::set<ClientId>> owners;
  for (const auto& c : task.train.clients())
    for (const auto& e : c.examples) owners[e.group].insert(c.client_id);
  for (const auto& [gid, who] : owners) EXPECT_EQ(who.size(), 1u);
}

TEST(SyntheticTasks, DeterministicGivenSeed) {
  util::Rng rng_a(42), rng_b(42);
  auto cfg = small_config(Domain::kAds);
  FederatedTask a = make_synthetic_task(cfg, rng_a);
  FederatedTask b = make_synthetic_task(cfg, rng_b);
  ASSERT_EQ(a.train.client_count(), b.train.client_count());
  for (std::size_t i = 0; i < a.train.client_count(); ++i) {
    const auto& ca = a.train.client_at(i);
    const auto& cb = b.train.client_at(i);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t j = 0; j < ca.size(); ++j) {
      EXPECT_EQ(ca.examples[j].label, cb.examples[j].label);
      EXPECT_EQ(ca.examples[j].dense, cb.examples[j].dense);
    }
  }
}

TEST(SyntheticTasks, QuantitySkewIncreasesWithStd) {
  util::Rng rng(6);
  auto narrow_cfg = small_config(Domain::kAds);
  narrow_cfg.clients = 300;
  narrow_cfg.std_records = 1.0;
  auto wide_cfg = narrow_cfg;
  wide_cfg.std_records = 100.0;
  wide_cfg.max_records = 5000;
  FederatedTask narrow = make_synthetic_task(narrow_cfg, rng);
  FederatedTask wide = make_synthetic_task(wide_cfg, rng);
  auto cv = [](const FederatedTask& t) {
    util::RunningStats s;
    for (const auto& c : t.train.clients()) s.add(static_cast<double>(c.size()));
    return s.stddev() / s.mean();
  };
  EXPECT_GT(cv(wide), cv(narrow) * 2.0);
}

TEST(SyntheticTasks, UntrainedModelScoresNearChance) {
  util::Rng rng(7);
  auto cfg = small_config(Domain::kAds);
  cfg.label_ratio = 0.3;
  FederatedTask task = make_synthetic_task(cfg, rng);
  auto model = task.make_model(rng);
  double aupr = task.evaluate(*model);
  // Untrained model: AUPR near the base rate (0.3), far from 1.
  EXPECT_GT(aupr, 0.1);
  EXPECT_LT(aupr, 0.6);
}

TEST(SyntheticTasks, ModelArchitecturesMatchDomains) {
  util::Rng rng(8);
  for (Domain domain : {Domain::kAds, Domain::kMessaging, Domain::kSearch}) {
    auto cfg = small_config(domain);
    FederatedTask task = make_synthetic_task(cfg, rng);
    auto model = task.make_model(rng);
    EXPECT_GT(model->parameter_count(), 0u);
    // Must be able to evaluate the test set without throwing.
    EXPECT_NO_THROW(task.evaluate(*model));
  }
}

TEST(EvaluateExamples, RejectsEmpty) {
  util::Rng rng(9);
  auto cfg = small_config(Domain::kAds);
  FederatedTask task = make_synthetic_task(cfg, rng);
  auto model = task.make_model(rng);
  std::vector<ml::Example> empty;
  EXPECT_THROW(evaluate_examples(*model, empty, Domain::kAds, 6), util::CheckError);
}

}  // namespace
}  // namespace flint::data
