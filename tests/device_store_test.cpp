#include "flint/device/device_store.h"

#include <gtest/gtest.h>

#include "flint/util/check.h"

namespace flint::device {
namespace {

ml::Example small_example(float label = 1.0f) {
  ml::Example e;
  e.dense = {1.0f, 2.0f, 3.0f, 4.0f};  // 16 bytes
  e.tokens = {1, 2};                   // 8 bytes
  e.label = label;
  return e;                            // + 8 label bytes + 4 group = 36 total
}

TEST(DeviceStore, ExampleBytesCountsPayload) {
  EXPECT_EQ(example_bytes(small_example()), 4 * 4 + 2 * 4 + 8 + 4);
  ml::Example empty;
  EXPECT_EQ(example_bytes(empty), 12u);
}

TEST(DeviceStore, LogAndView) {
  DeviceExampleStore store(DeviceStoreConfig{});
  store.log_example(small_example(0.0f), 10.0);
  store.log_example(small_example(1.0f), 20.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().logged, 2u);
  auto view = store.training_view(30.0);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0].label, 0.0f);
  EXPECT_EQ(view[1].label, 1.0f);
}

TEST(DeviceStore, ByteBudgetEvictsOldestFirst) {
  DeviceStoreConfig cfg;
  cfg.max_bytes = example_bytes(small_example()) * 3;  // room for 3
  DeviceExampleStore store(cfg);
  for (int i = 0; i < 5; ++i)
    store.log_example(small_example(static_cast<float>(i)), static_cast<double>(i));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().evicted_space, 2u);
  auto view = store.training_view(10.0);
  EXPECT_EQ(view.front().label, 2.0f);  // 0 and 1 evicted
  EXPECT_LE(store.bytes_used(), cfg.max_bytes);
}

TEST(DeviceStore, ExampleCountCap) {
  DeviceStoreConfig cfg;
  cfg.max_examples = 2;
  DeviceExampleStore store(cfg);
  for (int i = 0; i < 4; ++i)
    store.log_example(small_example(), static_cast<double>(i));
  EXPECT_EQ(store.size(), 2u);
}

TEST(DeviceStore, AgeExpiry) {
  DeviceStoreConfig cfg;
  cfg.max_age_s = 100.0;
  DeviceExampleStore store(cfg);
  store.log_example(small_example(0.0f), 0.0);
  store.log_example(small_example(1.0f), 90.0);
  // At t=150, the first record (age 150) has expired; the second (age 60)
  // survives.
  EXPECT_EQ(store.training_view(150.0).size(), 1u);
  store.gc(150.0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().expired, 1u);
}

TEST(DeviceStore, ExpiryHappensOnLog) {
  DeviceStoreConfig cfg;
  cfg.max_age_s = 50.0;
  DeviceExampleStore store(cfg);
  store.log_example(small_example(), 0.0);
  store.log_example(small_example(), 200.0);  // first one expires here
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().expired, 1u);
}

TEST(DeviceStore, OversizedRecordRejected) {
  DeviceStoreConfig cfg;
  cfg.max_bytes = 8;
  DeviceExampleStore store(cfg);
  store.log_example(small_example(), 0.0);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
}

TEST(DeviceStore, OutOfOrderLoggingThrows) {
  DeviceExampleStore store(DeviceStoreConfig{});
  store.log_example(small_example(), 100.0);
  EXPECT_THROW(store.log_example(small_example(), 50.0), util::CheckError);
}

TEST(DeviceStore, BytesUsedTracksContents) {
  DeviceExampleStore store(DeviceStoreConfig{});
  std::uint64_t each = example_bytes(small_example());
  store.log_example(small_example(), 0.0);
  store.log_example(small_example(), 1.0);
  EXPECT_EQ(store.bytes_used(), 2 * each);
}

TEST(DeviceStore, RejectsBadConfig) {
  DeviceStoreConfig bad;
  bad.max_bytes = 0;
  EXPECT_THROW(DeviceExampleStore{bad}, util::CheckError);
}

}  // namespace
}  // namespace flint::device
