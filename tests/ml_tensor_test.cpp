#include "flint/ml/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flint/util/rng.h"

namespace flint::ml {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(t.shape_string(), "[3, 4]");
}

TEST(Tensor, Rank1Construction) {
  Tensor v(5);
  EXPECT_EQ(v.rows(), 5u);
  EXPECT_EQ(v.cols(), 1u);
}

TEST(Tensor, FromVector) {
  Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(2, 2, {1.0f}), util::CheckError);
}

TEST(Tensor, ElementAccess) {
  Tensor t(2, 3);
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(1, 2), 7.0f);
  EXPECT_EQ(t[1 * 3 + 2], 7.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t(2, 2);
  t.fill(3.0f);
  for (float v : t.flat()) EXPECT_EQ(v, 3.0f);
  t.zero();
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a(1, 3, {1.0f, 2.0f, 3.0f});
  Tensor b(1, 3, {10.0f, 20.0f, 30.0f});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  a.add_scaled(b, 0.1f);
  EXPECT_NEAR(a[1], 4.0f + 2.0f, 1e-5);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(1, 3), b(3, 1);
  EXPECT_THROW(a += b, util::CheckError);
}

TEST(Tensor, L2Norm) {
  Tensor t(1, 2, {3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.l2_norm(), 5.0f);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  Tensor a(2, 3), b(2, 3);
  EXPECT_THROW(a.matmul(b), util::CheckError);
}

/// Property: A^T B computed by transposed_matmul equals transpose-then-matmul.
TEST(Tensor, TransposedMatmulConsistent) {
  util::Rng rng(3);
  Tensor a(4, 3), b(4, 5);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  Tensor at(3, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  Tensor expected = at.matmul(b);
  Tensor got = a.transposed_matmul(b);
  ASSERT_TRUE(expected.same_shape(got));
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(expected[i], got[i], 1e-4);
}

/// Property: A B^T computed by matmul_transposed equals matmul with explicit
/// transpose.
TEST(Tensor, MatmulTransposedConsistent) {
  util::Rng rng(5);
  Tensor a(4, 3), b(5, 3);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  Tensor bt(3, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  Tensor expected = a.matmul(bt);
  Tensor got = a.matmul_transposed(b);
  ASSERT_TRUE(expected.same_shape(got));
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(expected[i], got[i], 1e-4);
}

TEST(Tensor, RowSpanViews) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  auto r = t.row(1);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 4.0f);
  t.row(0)[2] = 99.0f;
  EXPECT_EQ(t.at(0, 2), 99.0f);
}

TEST(Tensor, Equality) {
  Tensor a(1, 2, {1, 2}), b(1, 2, {1, 2}), c(1, 2, {1, 3}), d(2, 1, {1, 2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace flint::ml
