// Property tests for the arrival scheduler: against randomized traces, its
// stream must match a brute-force reference and respect its invariants.
// The async leader's correctness ("dispatch them to workers in the correct
// order", §3.4) rests on this component.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "flint/sim/scheduler.h"
#include "flint/util/rng.h"

namespace flint::sim {
namespace {

device::AvailabilityTrace random_trace(util::Rng& rng, std::size_t windows) {
  std::vector<device::AvailabilityWindow> out;
  out.reserve(windows);
  for (std::size_t i = 0; i < windows; ++i) {
    double start = rng.uniform(0.0, 1000.0);
    double len = rng.uniform(1.0, 200.0);
    out.push_back({static_cast<std::uint64_t>(rng.uniform_int(0, 30)),
                   static_cast<std::size_t>(rng.uniform_int(0, 26)), start, start + len});
  }
  return device::AvailabilityTrace(std::move(out));
}

class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPropertyTest, MatchesBruteForceReference) {
  util::Rng rng(GetParam());
  auto trace = random_trace(rng, 200);
  ArrivalScheduler scheduler(trace);

  // Reference: windows sorted by start; a query at time t returns the
  // earliest unconsumed window with end > t, at effective time max(start, t).
  std::vector<device::AvailabilityWindow> reference = trace.windows();
  std::vector<bool> consumed(reference.size(), false);
  auto reference_next = [&](VirtualTime t)
      -> std::optional<std::pair<VirtualTime, std::uint64_t>> {
    std::optional<std::size_t> best;
    VirtualTime best_time = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (consumed[i] || reference[i].end <= t) continue;
      VirtualTime eff = std::max(reference[i].start, t);
      if (!best.has_value() || eff < best_time) {
        best = i;
        best_time = eff;
      }
    }
    if (!best.has_value()) return std::nullopt;
    consumed[*best] = true;
    return std::make_pair(best_time, reference[*best].client_id);
  };

  // Non-decreasing random query times (the leader's clock only advances).
  VirtualTime t = 0.0;
  for (int step = 0; step < 300; ++step) {
    t += rng.uniform(0.0, 10.0);
    auto expected = reference_next(t);
    auto got = scheduler.next(t);
    ASSERT_EQ(expected.has_value(), got.has_value()) << "step " << step << " t=" << t;
    if (!expected.has_value()) break;
    EXPECT_DOUBLE_EQ(got->time, expected->first) << "step " << step;
    // Clients can tie on effective time; the time itself must agree and the
    // returned window must genuinely cover it.
    EXPECT_GE(got->time, t);
    EXPECT_LT(got->time, got->window_end);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

class RequeuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RequeuePropertyTest, InvariantsUnderRandomRequeues) {
  util::Rng rng(GetParam());
  auto trace = random_trace(rng, 150);
  ArrivalScheduler scheduler(trace);

  VirtualTime t = 0.0;
  std::size_t served = 0;
  for (int step = 0; step < 1000; ++step) {
    auto arrival = scheduler.next(t);
    if (!arrival.has_value()) break;
    // Invariant 1: never offered outside its window or before the query time.
    ASSERT_GE(arrival->time, t);
    ASSERT_LT(arrival->time, arrival->window_end);
    if (rng.bernoulli(0.4)) {
      // Random defer within the window: must be re-offered later, not lost
      // to the past.
      VirtualTime retry = arrival->time + rng.uniform(0.0, 50.0);
      scheduler.requeue(*arrival, retry);
    } else {
      ++served;
      t = arrival->time;  // leader advances to the dispatch time
    }
    t += rng.uniform(0.0, 2.0);
  }
  // Invariant 2: the stream terminates (requeues past window end are
  // dropped) and serves a sensible number of windows.
  EXPECT_GT(served, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequeuePropertyTest, ::testing::Values(3u, 17u, 171u, 7171u));

TEST(SchedulerProperty, PeekAlwaysAgreesWithNext) {
  util::Rng rng(5);
  auto trace = random_trace(rng, 100);
  ArrivalScheduler scheduler(trace);
  VirtualTime t = 0.0;
  while (true) {
    auto peeked = scheduler.peek_time(t);
    auto arrival = scheduler.next(t);
    ASSERT_EQ(peeked.has_value(), arrival.has_value());
    if (!arrival.has_value()) break;
    EXPECT_DOUBLE_EQ(*peeked, arrival->time);
    t = arrival->time + rng.uniform(0.0, 5.0);
  }
}

}  // namespace
}  // namespace flint::sim
