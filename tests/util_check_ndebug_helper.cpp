// Compiled with NDEBUG forced on (see tests/CMakeLists.txt) so
// util_check_test can observe FLINT_DCHECK elision no matter how the rest of
// the build is configured.
#ifndef NDEBUG
#define NDEBUG
#endif

#include "flint/util/check.h"

namespace flint::test {

bool dcheck_elides_in_ndebug() {
  FLINT_DCHECK(false);
  FLINT_DCHECK_EQ(1, 2);
  FLINT_DCHECK_LT(10, 0);
  return true;  // reaching here means nothing threw
}

bool dcheck_skips_side_effects_in_ndebug() {
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  FLINT_DCHECK(bump() < 0);
  FLINT_DCHECK_GT(0, bump());
  (void)bump;
  return evaluations == 0;
}

}  // namespace flint::test
