#include "flint/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "flint/util/stats.h"

namespace flint::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntInvertedBoundsThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), CheckError);
}

TEST(Rng, UniformRealBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BernoulliProbability) {
  Rng rng(11);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(11);
  EXPECT_THROW(rng.bernoulli(-0.1), CheckError);
  EXPECT_THROW(rng.bernoulli(1.1), CheckError);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalMatchesMomentFormula) {
  Rng rng(17);
  LognormalParams p = lognormal_from_moments(100.0, 150.0);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.lognormal(p.mu, p.sigma));
  EXPECT_NEAR(s.mean(), 100.0, 5.0);
  EXPECT_NEAR(s.stddev(), 150.0, 15.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoHeavierTailForSmallerAlpha) {
  Rng rng(23);
  double p99_heavy = 0.0, p99_light = 0.0;
  std::vector<double> heavy, light;
  for (int i = 0; i < 20000; ++i) {
    heavy.push_back(rng.pareto(1.0, 0.9));
    light.push_back(rng.pareto(1.0, 3.0));
  }
  p99_heavy = percentile(heavy, 99.0);
  p99_light = percentile(light, 99.0);
  EXPECT_GT(p99_heavy, p99_light * 3.0);
}

TEST(Rng, PoissonMean) {
  Rng rng(29);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(rng.poisson(4.0)));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonLargeMeanMatchesMoments) {
  // Large means route through the PTRS rejection sampler rather than
  // inversion; mean and variance must both track lambda (for Poisson they
  // are equal), or the transformed-rejection constants are off.
  for (double lambda : {15.0, 60.0, 400.0}) {
    Rng rng(41);
    RunningStats s;
    for (int i = 0; i < 30000; ++i) s.add(static_cast<double>(rng.poisson(lambda)));
    EXPECT_NEAR(s.mean(), lambda, 0.02 * lambda) << "lambda " << lambda;
    EXPECT_NEAR(s.variance(), lambda, 0.10 * lambda) << "lambda " << lambda;
  }
}

TEST(Rng, PoissonIsDeterministicGivenSeedInBothRegimes) {
  // The whole reason the sampler is hand-rolled: identical draws from
  // identical engine state, on every platform and standard library. Covers
  // the inversion regime (mean < 10) and the PTRS regime.
  for (double lambda : {0.3, 4.0, 9.9, 10.1, 250.0}) {
    Rng a(77);
    Rng b(77);
    for (int i = 0; i < 200; ++i)
      ASSERT_EQ(a.poisson(lambda), b.poisson(lambda)) << "lambda " << lambda << " draw " << i;
  }
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    std::size_t v = rng.zipf(10, 1.2);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Rank 0 should dominate rank 9 heavily.
  EXPECT_GT(counts[0], counts[9] * 5);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(31);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(37);
  for (double alpha : {0.1, 1.0, 10.0}) {
    auto v = rng.dirichlet(8, alpha);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletSmallAlphaIsSkewed) {
  Rng rng(41);
  double max_small = 0.0, max_large = 0.0;
  for (int i = 0; i < 200; ++i) {
    auto s = rng.dirichlet(10, 0.05);
    auto l = rng.dirichlet(10, 50.0);
    max_small += *std::max_element(s.begin(), s.end());
    max_large += *std::max_element(l.begin(), l.end());
  }
  EXPECT_GT(max_small / 200.0, 0.7);   // near one-hot
  EXPECT_LT(max_large / 200.0, 0.25);  // near uniform
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(43);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, CategoricalRejectsZeroTotal) {
  Rng rng(43);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(w), CheckError);
}

class SampleWithoutReplacementTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  auto [n, k] = GetParam();
  Rng rng(47);
  auto sample = rng.sample_without_replacement(static_cast<std::size_t>(n),
                                               static_cast<std::size_t>(k));
  EXPECT_EQ(sample.size(), static_cast<std::size_t>(k));
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
  for (std::size_t v : sample) EXPECT_LT(v, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SampleWithoutReplacementTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{10, 10}, std::pair{10, 3},
                                           std::pair{1000, 50}, std::pair{5000, 1},
                                           std::pair{100, 99}));

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Rng rng(51);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(59);
  Rng child = parent.fork();
  // Child stream shouldn't mirror the parent.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SerializeStateRoundTrip) {
  Rng a(991);
  for (int i = 0; i < 37; ++i) a.next_u64();  // advance into the stream
  std::string state = a.serialize_state();
  Rng b(12345);  // different seed: the snapshot overlays engine state only
  b.deserialize_state(state);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DeserializeGarbageStateThrows) {
  Rng r(1);
  EXPECT_THROW(r.deserialize_state("not a valid engine state"), CheckError);
  EXPECT_THROW(r.deserialize_state(""), CheckError);
}

TEST(Splitmix, AvalanchesOnAdjacentInputs) {
  auto a = splitmix64(1), b = splitmix64(2);
  EXPECT_NE(a, b);
  int differing_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing_bits, 10);
}

}  // namespace
}  // namespace flint::util
