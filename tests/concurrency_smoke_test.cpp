// Threaded smoke coverage for the pieces that must tolerate concurrency:
// parallel model-free FedBuff runs (independent leaders, shared nothing) and
// concurrent checkpoint writes into one CheckpointStore. This is the test set
// scripts/run_sanitizers.sh --fast thread builds under TSan, so keep it quick.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "flint/fl/fedbuff.h"
#include "flint/store/checkpoint.h"
#include "test_helpers.h"

namespace flint {
namespace {

fl::AsyncConfig smoke_config(const device::AvailabilityTrace& trace,
                             const device::DeviceCatalog& catalog,
                             const net::BandwidthModel& bandwidth,
                             const std::vector<std::uint32_t>& counts) {
  fl::AsyncConfig cfg;
  cfg.inputs.model_free = true;
  cfg.inputs.client_example_counts = &counts;
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &catalog;
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.duration.base_time_per_example_s = 0.05;
  cfg.inputs.duration.update_bytes = 100'000;
  cfg.inputs.reparticipation_gap_s = 0.0;
  cfg.inputs.max_rounds = 6;
  cfg.buffer_size = 3;
  cfg.max_concurrency = 8;
  cfg.max_staleness = 100;
  return cfg;
}

TEST(ConcurrencySmoke, ParallelFedBuffRunsAreIndependent) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  auto trace = test::always_available(40, 1e7);
  std::vector<std::uint32_t> counts(40, 20);

  constexpr int kThreads = 4;
  std::vector<fl::RunResult> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      auto cfg = smoke_config(trace, catalog, bw, counts);
      cfg.inputs.seed = 77;  // identical seeds: results must match exactly
      results[static_cast<std::size_t>(i)] = fl::run_fedbuff(cfg);
    });
  }
  for (auto& w : workers) w.join();

  for (const auto& r : results) {
    EXPECT_EQ(r.rounds, 6u);
    EXPECT_DOUBLE_EQ(r.virtual_duration_s, results[0].virtual_duration_s);
    EXPECT_EQ(r.metrics.tasks_started(), results[0].metrics.tasks_started());
  }
}

TEST(ConcurrencySmoke, CheckpointStoreHandlesConcurrentWriters) {
  auto dir = std::filesystem::temp_directory_path() / "flint_ckpt_concurrency";
  std::filesystem::remove_all(dir);
  store::CheckpointStore cps(dir.string());

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        store::SimCheckpoint ckpt;
        ckpt.virtual_time_s = static_cast<double>(t * kWritesPerThread + i);
        ckpt.round = static_cast<std::uint64_t>(i) + 1;
        ckpt.model_parameters.assign(64, static_cast<float>(t));
        if (cps.write(ckpt) < 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(failures.load(), 0);
  // Unique sequence numbers => every write landed as its own file.
  EXPECT_EQ(cps.checkpoint_count(), static_cast<std::size_t>(kThreads * kWritesPerThread));
  auto latest = cps.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->model_parameters.size(), 64u);
  std::filesystem::remove_all(dir);
}

TEST(ConcurrencySmoke, ParallelSerializationRoundTrips) {
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        store::SimCheckpoint ckpt;
        ckpt.virtual_time_s = 1.5 * t;
        ckpt.round = static_cast<std::uint64_t>(i + 1);
        ckpt.tasks_completed = 99;
        ckpt.model_parameters.assign(128, static_cast<float>(i));
        auto blob = store::serialize_checkpoint(ckpt);
        auto back = store::deserialize_checkpoint(blob);
        if (back.round != ckpt.round || back.model_parameters != ckpt.model_parameters)
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace flint
