#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "flint/store/checkpoint.h"
#include "flint/store/model_store.h"
#include "flint/util/check.h"
#include "flint/util/crc32.h"

namespace flint::store {
namespace {

namespace fs = std::filesystem;

/// RAII temp directory for store tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() / ("flint_test_" + tag + "_" +
                                         std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// --------------------------------------------------------------- ModelStore

TEST(ModelStore, VersionsMonotonicPerName) {
  ModelStore store;
  EXPECT_EQ(store.put("ads", {1.0f}), 1);
  EXPECT_EQ(store.put("ads", {2.0f}), 2);
  EXPECT_EQ(store.put("search", {3.0f}), 1);
  EXPECT_EQ(store.version_count("ads"), 2u);
  EXPECT_EQ(store.latest("ads")->parameters[0], 2.0f);
  EXPECT_EQ(store.get("ads", 1)->parameters[0], 1.0f);
  EXPECT_FALSE(store.get("ads", 3).has_value());
  EXPECT_FALSE(store.get("ads", 0).has_value());
  EXPECT_FALSE(store.latest("none").has_value());
}

TEST(ModelStore, TagsAndTimes) {
  ModelStore store;
  store.put("m", {1.0f, 2.0f}, "round-5", 123.0);
  auto v = store.latest("m");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->tag, "round-5");
  EXPECT_DOUBLE_EQ(v->created_at_virtual_s, 123.0);
}

TEST(ModelStore, TotalBytes) {
  ModelStore store;
  store.put("a", std::vector<float>(10, 0.0f));
  store.put("a", std::vector<float>(5, 0.0f));
  EXPECT_EQ(store.total_bytes(), 15u * sizeof(float));
}

TEST(ModelStore, SerializeRoundTrip) {
  ModelVersion v;
  v.version = 3;
  v.parameters = {1.5f, -2.25f, 0.0f};
  v.tag = "hello, tag";
  v.created_at_virtual_s = 42.5;
  auto blob = serialize_model_version(v);
  ModelVersion back = deserialize_model_version(blob);
  EXPECT_EQ(back.version, 3);
  EXPECT_EQ(back.parameters, v.parameters);
  EXPECT_EQ(back.tag, v.tag);
  EXPECT_DOUBLE_EQ(back.created_at_virtual_s, 42.5);
}

TEST(ModelStore, DeserializeRejectsGarbage) {
  std::vector<char> garbage = {'X', 'X', 'X', 'X', 0};
  EXPECT_THROW(deserialize_model_version(garbage), util::CheckError);
  EXPECT_THROW(deserialize_model_version({}), util::CheckError);
}

TEST(ModelStore, SaveLoadDirectory) {
  TempDir dir("modelstore");
  ModelStore store;
  store.put("ads", {1.0f, 2.0f}, "v1");
  store.put("ads", {3.0f}, "v2");
  store.put("msg", {4.0f}, "only");
  store.save_to_dir(dir.str());

  ModelStore loaded = ModelStore::load_from_dir(dir.str());
  EXPECT_EQ(loaded.version_count("ads"), 2u);
  EXPECT_EQ(loaded.get("ads", 1)->parameters, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(loaded.latest("ads")->tag, "v2");
  EXPECT_EQ(loaded.latest("msg")->parameters[0], 4.0f);
}

TEST(ModelStore, SaveToMissingDirThrows) {
  ModelStore store;
  store.put("a", {1.0f});
  EXPECT_THROW(store.save_to_dir("/nonexistent/dir/xyz"), util::CheckError);
}

// -------------------------------------------------------------- Checkpoints

SimCheckpoint sample_checkpoint(double t, std::uint64_t round) {
  SimCheckpoint c;
  c.virtual_time_s = t;
  c.round = round;
  c.tasks_completed = round * 10;
  c.model_parameters = {static_cast<float>(round), 2.0f};
  return c;
}

TEST(Checkpoint, SerializeRoundTrip) {
  auto c = sample_checkpoint(99.5, 7);
  auto back = deserialize_checkpoint(serialize_checkpoint(c));
  EXPECT_DOUBLE_EQ(back.virtual_time_s, 99.5);
  EXPECT_EQ(back.round, 7u);
  EXPECT_EQ(back.tasks_completed, 70u);
  EXPECT_EQ(back.model_parameters, c.model_parameters);
}

TEST(Checkpoint, DeserializeRejectsTruncation) {
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  blob.resize(blob.size() - 3);
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

// ---------------------------------------------------- blob corruption matrix
// Header layout: "FCKP"(4) | u32 version | u64 payload_size | u32 crc32.
constexpr std::size_t kBlobHeaderSize = 20;
constexpr std::size_t kCrcOffset = 16;

std::uint32_t blob_payload_crc(const std::vector<char>& blob) {
  return util::crc32(blob.data() + kBlobHeaderSize, blob.size() - kBlobHeaderSize);
}

TEST(Checkpoint, DeserializeRejectsShortBlob) {
  EXPECT_THROW(deserialize_checkpoint({}), util::CheckError);
  std::vector<char> stub = {'F', 'C', 'K', 'P', 2, 0, 0};
  EXPECT_THROW(deserialize_checkpoint(stub), util::CheckError);
}

TEST(Checkpoint, DeserializeRejectsBadMagic) {
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  blob[0] = 'X';
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

TEST(Checkpoint, DeserializeRejectsUnknownFormatVersion) {
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  std::uint32_t bogus_version = 99;
  std::memcpy(blob.data() + 4, &bogus_version, sizeof(bogus_version));
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

TEST(Checkpoint, DeserializeRejectsCrcMismatch) {
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  blob[kBlobHeaderSize + 3] ^= 0x40;  // flip one payload bit
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

TEST(Checkpoint, DeserializeRejectsOverflowingElementCount) {
  // Patch the model-parameter count to a value where `n * sizeof(float)`
  // wraps size_t to a tiny number, then re-stamp the CRC so only the count
  // bounds check stands between the parser and a wild resize. The division
  // form `n <= remaining / sizeof(float)` must reject it.
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  // Fixed-width prefix before the count: run_seed(8) + algo(1) +
  // resume_count(8) + checkpoints_written(8) + virtual_time_s(8) + round(8)
  // + tasks_completed(8) = 49 payload bytes.
  constexpr std::size_t kParamCountOffset = kBlobHeaderSize + 49;
  std::uint64_t evil_count = 0x4000000000000001ull;  // * 4 wraps to 4
  std::memcpy(blob.data() + kParamCountOffset, &evil_count, sizeof(evil_count));
  std::uint32_t crc = blob_payload_crc(blob);
  std::memcpy(blob.data() + kCrcOffset, &crc, sizeof(crc));
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

TEST(Checkpoint, DeserializeRejectsTrailingBytes) {
  // Trailing garbage that is *included* in the declared payload (size and CRC
  // both cover it) must still be rejected: every byte has to be consumed.
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  blob.insert(blob.end(), 8, '\0');
  std::uint64_t payload_size = blob.size() - kBlobHeaderSize;
  std::memcpy(blob.data() + 8, &payload_size, sizeof(payload_size));
  std::uint32_t crc = blob_payload_crc(blob);
  std::memcpy(blob.data() + kCrcOffset, &crc, sizeof(crc));
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

TEST(Checkpoint, SerializeRoundTripAllFields) {
  SimCheckpoint c;
  c.virtual_time_s = 1234.5;
  c.round = 17;
  c.tasks_completed = 170;
  c.model_parameters = {1.5f, -2.25f, 0.125f};
  c.run_seed = 0xDEADBEEFCAFEull;
  c.algo = kCheckpointAlgoFedBuff;
  c.resume_count = 3;
  c.checkpoints_written = 9;
  c.server_velocity = {0.5f, -0.5f, 0.0f};
  c.server_rng_state = std::string("rng\0state", 9);  // embedded NUL survives
  c.next_task_id = 421;
  c.arrival_cursor = 88;
  c.requeued = {{10.5, 4, 1, 99.0}, {11.5, 7, 0, 100.0}};
  c.last_participation = {{2, 5.0}, {9, 7.5}};
  c.metrics.tasks_started = 50;
  c.metrics.tasks_succeeded = 40;
  c.metrics.tasks_interrupted = 5;
  c.metrics.tasks_stale = 3;
  c.metrics.tasks_failed = 2;
  c.metrics.updates_aggregated = 38;
  c.metrics.client_compute_s = 123.25;
  c.metrics.rounds = {{1, 0.0, 10.0, 4, 0.5}, {2, 10.0, 21.0, 4, 1.25}};
  c.metrics.checkpoints = {{2, 21.0}};
  c.eval_curve = {{10.0, 1, 0.75, 0.5}, {21.0, 2, 0.8, 0.4}};
  c.client_accounts = {{3, 4, 1, 0, 0, 2.5, 0.25, 1000, 2000},
                       {8, 2, 0, 1, 1, 1.5, 0.75, 500, 900}};
  c.has_fedbuff = true;
  c.fedbuff.accumulator_sum = {0.25, -0.75, 1.0};
  c.fedbuff.accumulator_weight_sum = 3.5;
  c.fedbuff.accumulator_count = 2;
  c.fedbuff.staleness_sum = 4.0;
  c.fedbuff.round_start = 10.0;
  c.fedbuff.last_aggregation_time = 21.0;
  c.fedbuff.pump_scheduled = true;
  c.fedbuff.pump_time = 22.5;
  c.fedbuff.pump_stamp = 41;
  c.fedbuff.next_stamp = 42;
  CheckpointInFlightTask t;
  t.task_id = 77;
  t.client_id = 12;
  t.device_index = 2;
  t.model_version = 16;
  t.dispatch_time = 20.0;
  t.compute_s = 3.5;
  t.comm_s = 0.5;
  t.examples = 64;
  t.update_bytes = 4096;
  t.spent_compute_s = 1.25;
  t.window_end = 30.0;
  t.finish_time = 24.0;
  t.interrupted = true;
  t.stamp = 40;
  t.update_weight = 64.0;
  t.update_delta = {0.1f, -0.2f, 0.3f};
  c.fedbuff.in_flight = {t};

  SimCheckpoint b = deserialize_checkpoint(serialize_checkpoint(c));
  EXPECT_EQ(b.virtual_time_s, c.virtual_time_s);
  EXPECT_EQ(b.round, c.round);
  EXPECT_EQ(b.tasks_completed, c.tasks_completed);
  EXPECT_EQ(b.model_parameters, c.model_parameters);
  EXPECT_EQ(b.run_seed, c.run_seed);
  EXPECT_EQ(b.algo, c.algo);
  EXPECT_EQ(b.resume_count, c.resume_count);
  EXPECT_EQ(b.checkpoints_written, c.checkpoints_written);
  EXPECT_EQ(b.server_velocity, c.server_velocity);
  EXPECT_EQ(b.server_rng_state, c.server_rng_state);
  EXPECT_EQ(b.next_task_id, c.next_task_id);
  EXPECT_EQ(b.arrival_cursor, c.arrival_cursor);
  ASSERT_EQ(b.requeued.size(), c.requeued.size());
  for (std::size_t i = 0; i < c.requeued.size(); ++i) {
    EXPECT_EQ(b.requeued[i].time, c.requeued[i].time);
    EXPECT_EQ(b.requeued[i].client_id, c.requeued[i].client_id);
    EXPECT_EQ(b.requeued[i].device_index, c.requeued[i].device_index);
    EXPECT_EQ(b.requeued[i].window_end, c.requeued[i].window_end);
  }
  EXPECT_EQ(b.last_participation, c.last_participation);
  EXPECT_EQ(b.metrics.tasks_started, c.metrics.tasks_started);
  EXPECT_EQ(b.metrics.tasks_succeeded, c.metrics.tasks_succeeded);
  EXPECT_EQ(b.metrics.tasks_interrupted, c.metrics.tasks_interrupted);
  EXPECT_EQ(b.metrics.tasks_stale, c.metrics.tasks_stale);
  EXPECT_EQ(b.metrics.tasks_failed, c.metrics.tasks_failed);
  EXPECT_EQ(b.metrics.updates_aggregated, c.metrics.updates_aggregated);
  EXPECT_EQ(b.metrics.client_compute_s, c.metrics.client_compute_s);
  ASSERT_EQ(b.metrics.rounds.size(), c.metrics.rounds.size());
  for (std::size_t i = 0; i < c.metrics.rounds.size(); ++i) {
    EXPECT_EQ(b.metrics.rounds[i].round, c.metrics.rounds[i].round);
    EXPECT_EQ(b.metrics.rounds[i].start, c.metrics.rounds[i].start);
    EXPECT_EQ(b.metrics.rounds[i].end, c.metrics.rounds[i].end);
    EXPECT_EQ(b.metrics.rounds[i].updates_aggregated, c.metrics.rounds[i].updates_aggregated);
    EXPECT_EQ(b.metrics.rounds[i].mean_staleness, c.metrics.rounds[i].mean_staleness);
  }
  ASSERT_EQ(b.metrics.checkpoints.size(), c.metrics.checkpoints.size());
  EXPECT_EQ(b.metrics.checkpoints[0].round, c.metrics.checkpoints[0].round);
  EXPECT_EQ(b.metrics.checkpoints[0].time, c.metrics.checkpoints[0].time);
  ASSERT_EQ(b.eval_curve.size(), c.eval_curve.size());
  for (std::size_t i = 0; i < c.eval_curve.size(); ++i) {
    EXPECT_EQ(b.eval_curve[i].time, c.eval_curve[i].time);
    EXPECT_EQ(b.eval_curve[i].round, c.eval_curve[i].round);
    EXPECT_EQ(b.eval_curve[i].metric, c.eval_curve[i].metric);
    EXPECT_EQ(b.eval_curve[i].train_loss, c.eval_curve[i].train_loss);
  }
  ASSERT_EQ(b.client_accounts.size(), c.client_accounts.size());
  for (std::size_t i = 0; i < c.client_accounts.size(); ++i) {
    EXPECT_EQ(b.client_accounts[i].client_id, c.client_accounts[i].client_id);
    EXPECT_EQ(b.client_accounts[i].tasks_succeeded, c.client_accounts[i].tasks_succeeded);
    EXPECT_EQ(b.client_accounts[i].tasks_interrupted, c.client_accounts[i].tasks_interrupted);
    EXPECT_EQ(b.client_accounts[i].tasks_stale, c.client_accounts[i].tasks_stale);
    EXPECT_EQ(b.client_accounts[i].tasks_failed, c.client_accounts[i].tasks_failed);
    EXPECT_EQ(b.client_accounts[i].compute_s, c.client_accounts[i].compute_s);
    EXPECT_EQ(b.client_accounts[i].wasted_compute_s, c.client_accounts[i].wasted_compute_s);
    EXPECT_EQ(b.client_accounts[i].bytes_down, c.client_accounts[i].bytes_down);
    EXPECT_EQ(b.client_accounts[i].bytes_up, c.client_accounts[i].bytes_up);
  }
  ASSERT_TRUE(b.has_fedbuff);
  EXPECT_EQ(b.fedbuff.accumulator_sum, c.fedbuff.accumulator_sum);
  EXPECT_EQ(b.fedbuff.accumulator_weight_sum, c.fedbuff.accumulator_weight_sum);
  EXPECT_EQ(b.fedbuff.accumulator_count, c.fedbuff.accumulator_count);
  EXPECT_EQ(b.fedbuff.staleness_sum, c.fedbuff.staleness_sum);
  EXPECT_EQ(b.fedbuff.round_start, c.fedbuff.round_start);
  EXPECT_EQ(b.fedbuff.last_aggregation_time, c.fedbuff.last_aggregation_time);
  EXPECT_EQ(b.fedbuff.pump_scheduled, c.fedbuff.pump_scheduled);
  EXPECT_EQ(b.fedbuff.pump_time, c.fedbuff.pump_time);
  EXPECT_EQ(b.fedbuff.pump_stamp, c.fedbuff.pump_stamp);
  EXPECT_EQ(b.fedbuff.next_stamp, c.fedbuff.next_stamp);
  ASSERT_EQ(b.fedbuff.in_flight.size(), 1u);
  const auto& bt = b.fedbuff.in_flight[0];
  EXPECT_EQ(bt.task_id, t.task_id);
  EXPECT_EQ(bt.client_id, t.client_id);
  EXPECT_EQ(bt.device_index, t.device_index);
  EXPECT_EQ(bt.model_version, t.model_version);
  EXPECT_EQ(bt.dispatch_time, t.dispatch_time);
  EXPECT_EQ(bt.compute_s, t.compute_s);
  EXPECT_EQ(bt.comm_s, t.comm_s);
  EXPECT_EQ(bt.examples, t.examples);
  EXPECT_EQ(bt.update_bytes, t.update_bytes);
  EXPECT_EQ(bt.spent_compute_s, t.spent_compute_s);
  EXPECT_EQ(bt.window_end, t.window_end);
  EXPECT_EQ(bt.finish_time, t.finish_time);
  EXPECT_EQ(bt.interrupted, t.interrupted);
  EXPECT_EQ(bt.stamp, t.stamp);
  EXPECT_EQ(bt.update_weight, t.update_weight);
  EXPECT_EQ(bt.update_delta, t.update_delta);
}

TEST(CheckpointStore, WriteAndLatest) {
  TempDir dir("ckpt");
  CheckpointStore store(dir.str());
  EXPECT_FALSE(store.latest().has_value());
  EXPECT_EQ(store.write(sample_checkpoint(10.0, 1)), 1);
  EXPECT_EQ(store.write(sample_checkpoint(20.0, 2)), 2);
  auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 2u);
  EXPECT_EQ(store.checkpoint_count(), 2u);
}

TEST(CheckpointStore, ResumesNumberingAcrossInstances) {
  TempDir dir("ckpt_resume");
  {
    CheckpointStore store(dir.str());
    store.write(sample_checkpoint(1.0, 1));
    store.write(sample_checkpoint(2.0, 2));
  }
  CheckpointStore reopened(dir.str());
  EXPECT_EQ(reopened.write(sample_checkpoint(3.0, 3)), 3);
  EXPECT_EQ(reopened.latest()->round, 3u);
}

TEST(CheckpointStore, PruneKeepsMostRecent) {
  TempDir dir("ckpt_prune");
  CheckpointStore store(dir.str());
  for (std::uint64_t r = 1; r <= 5; ++r) store.write(sample_checkpoint(r * 1.0, r));
  store.prune(2);
  EXPECT_EQ(store.checkpoint_count(), 2u);
  EXPECT_EQ(store.latest()->round, 5u);
}

TEST(CheckpointStore, NoTmpFilesLeftBehind) {
  TempDir dir("ckpt_tmp");
  CheckpointStore store(dir.str());
  store.write(sample_checkpoint(1.0, 1));
  for (const auto& entry : fs::directory_iterator(dir.str()))
    EXPECT_NE(entry.path().extension(), ".tmp");
}

TEST(CheckpointStore, CreatesDirectoryIfMissing) {
  TempDir dir("ckpt_mkdir");
  std::string nested = dir.str() + "/a/b";
  CheckpointStore store(nested);
  store.write(sample_checkpoint(1.0, 1));
  EXPECT_TRUE(fs::exists(nested));
}

// -------------------------------------------------- store recovery behavior

void truncate_file(const fs::path& path, std::uintmax_t keep) {
  fs::resize_file(path, keep);
}

TEST(CheckpointStore, LatestSkipsTornNewestFile) {
  // A crash mid-publish (or a disk fault after publish) leaves a torn newest
  // file; resume must fall back to the valid predecessor, not abort.
  TempDir dir("ckpt_torn");
  CheckpointStore store(dir.str());
  store.write(sample_checkpoint(10.0, 1));
  store.write(sample_checkpoint(20.0, 2));
  truncate_file(fs::path(dir.str()) / "ckpt_2.bin", 11);
  auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 1u);
}

TEST(CheckpointStore, LatestSkipsBitFlippedNewestFile) {
  TempDir dir("ckpt_flip");
  CheckpointStore store(dir.str());
  store.write(sample_checkpoint(10.0, 1));
  store.write(sample_checkpoint(20.0, 2));
  fs::path newest = fs::path(dir.str()) / "ckpt_2.bin";
  std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  char byte;
  f.seekg(24);
  f.get(byte);
  byte ^= 0x01;
  f.seekp(24);
  f.put(byte);
  f.close();
  auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 1u);
}

TEST(CheckpointStore, LatestReturnsNulloptWhenAllCorrupt) {
  TempDir dir("ckpt_allbad");
  CheckpointStore store(dir.str());
  store.write(sample_checkpoint(10.0, 1));
  store.write(sample_checkpoint(20.0, 2));
  truncate_file(fs::path(dir.str()) / "ckpt_1.bin", 5);
  truncate_file(fs::path(dir.str()) / "ckpt_2.bin", 5);
  EXPECT_FALSE(store.latest().has_value());
}

TEST(CheckpointStore, SweepsStaleTmpFilesAtConstruction) {
  TempDir dir("ckpt_sweep");
  {
    std::ofstream tmp(fs::path(dir.str()) / "ckpt_7.tmp", std::ios::binary);
    tmp << "half-written garbage from a dead writer";
  }
  CheckpointStore store(dir.str());
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / "ckpt_7.tmp"));
  // The dead writer's temp must not inflate numbering either.
  EXPECT_EQ(store.write(sample_checkpoint(1.0, 1)), 1);
}

TEST(CheckpointStore, LeavesForeignFilesAlone) {
  TempDir dir("ckpt_foreign");
  fs::path notes = fs::path(dir.str()) / "notes.txt";
  fs::path weird_tmp = fs::path(dir.str()) / "ckpt_99999999999999999999.tmp";
  fs::path not_ours = fs::path(dir.str()) / "other_3.tmp";
  for (const auto& p : {notes, weird_tmp, not_ours}) std::ofstream(p) << "keep me";
  CheckpointStore store(dir.str());
  // Only files matching our own ckpt_<seq>.tmp naming are swept; anything
  // the parse rejects (including an overflowing sequence) is not ours.
  EXPECT_TRUE(fs::exists(notes));
  EXPECT_TRUE(fs::exists(weird_tmp));
  EXPECT_TRUE(fs::exists(not_ours));
  EXPECT_EQ(store.write(sample_checkpoint(1.0, 1)), 1);
}

TEST(CheckpointStore, HandlesSequenceNumbersPastIntRange) {
  // A long-running lineage's sequence numbers exceed 32-bit int; numbering
  // must keep counting instead of overflowing in std::stoi.
  TempDir dir("ckpt_bigseq");
  auto blob = serialize_checkpoint(sample_checkpoint(30.0, 3));
  {
    std::ofstream out(fs::path(dir.str()) / "ckpt_3000000000.bin", std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  CheckpointStore store(dir.str());
  EXPECT_EQ(store.checkpoint_count(), 1u);
  EXPECT_EQ(store.latest()->round, 3u);
  EXPECT_EQ(store.write(sample_checkpoint(40.0, 4)), 3000000001);
  EXPECT_EQ(store.latest()->round, 4u);
}

}  // namespace
}  // namespace flint::store
