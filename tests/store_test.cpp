#include <gtest/gtest.h>

#include <filesystem>

#include "flint/store/checkpoint.h"
#include "flint/store/model_store.h"
#include "flint/util/check.h"

namespace flint::store {
namespace {

namespace fs = std::filesystem;

/// RAII temp directory for store tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() / ("flint_test_" + tag + "_" +
                                         std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// --------------------------------------------------------------- ModelStore

TEST(ModelStore, VersionsMonotonicPerName) {
  ModelStore store;
  EXPECT_EQ(store.put("ads", {1.0f}), 1);
  EXPECT_EQ(store.put("ads", {2.0f}), 2);
  EXPECT_EQ(store.put("search", {3.0f}), 1);
  EXPECT_EQ(store.version_count("ads"), 2u);
  EXPECT_EQ(store.latest("ads")->parameters[0], 2.0f);
  EXPECT_EQ(store.get("ads", 1)->parameters[0], 1.0f);
  EXPECT_FALSE(store.get("ads", 3).has_value());
  EXPECT_FALSE(store.get("ads", 0).has_value());
  EXPECT_FALSE(store.latest("none").has_value());
}

TEST(ModelStore, TagsAndTimes) {
  ModelStore store;
  store.put("m", {1.0f, 2.0f}, "round-5", 123.0);
  auto v = store.latest("m");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->tag, "round-5");
  EXPECT_DOUBLE_EQ(v->created_at_virtual_s, 123.0);
}

TEST(ModelStore, TotalBytes) {
  ModelStore store;
  store.put("a", std::vector<float>(10, 0.0f));
  store.put("a", std::vector<float>(5, 0.0f));
  EXPECT_EQ(store.total_bytes(), 15u * sizeof(float));
}

TEST(ModelStore, SerializeRoundTrip) {
  ModelVersion v;
  v.version = 3;
  v.parameters = {1.5f, -2.25f, 0.0f};
  v.tag = "hello, tag";
  v.created_at_virtual_s = 42.5;
  auto blob = serialize_model_version(v);
  ModelVersion back = deserialize_model_version(blob);
  EXPECT_EQ(back.version, 3);
  EXPECT_EQ(back.parameters, v.parameters);
  EXPECT_EQ(back.tag, v.tag);
  EXPECT_DOUBLE_EQ(back.created_at_virtual_s, 42.5);
}

TEST(ModelStore, DeserializeRejectsGarbage) {
  std::vector<char> garbage = {'X', 'X', 'X', 'X', 0};
  EXPECT_THROW(deserialize_model_version(garbage), util::CheckError);
  EXPECT_THROW(deserialize_model_version({}), util::CheckError);
}

TEST(ModelStore, SaveLoadDirectory) {
  TempDir dir("modelstore");
  ModelStore store;
  store.put("ads", {1.0f, 2.0f}, "v1");
  store.put("ads", {3.0f}, "v2");
  store.put("msg", {4.0f}, "only");
  store.save_to_dir(dir.str());

  ModelStore loaded = ModelStore::load_from_dir(dir.str());
  EXPECT_EQ(loaded.version_count("ads"), 2u);
  EXPECT_EQ(loaded.get("ads", 1)->parameters, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(loaded.latest("ads")->tag, "v2");
  EXPECT_EQ(loaded.latest("msg")->parameters[0], 4.0f);
}

TEST(ModelStore, SaveToMissingDirThrows) {
  ModelStore store;
  store.put("a", {1.0f});
  EXPECT_THROW(store.save_to_dir("/nonexistent/dir/xyz"), util::CheckError);
}

// -------------------------------------------------------------- Checkpoints

SimCheckpoint sample_checkpoint(double t, std::uint64_t round) {
  SimCheckpoint c;
  c.virtual_time_s = t;
  c.round = round;
  c.tasks_completed = round * 10;
  c.model_parameters = {static_cast<float>(round), 2.0f};
  return c;
}

TEST(Checkpoint, SerializeRoundTrip) {
  auto c = sample_checkpoint(99.5, 7);
  auto back = deserialize_checkpoint(serialize_checkpoint(c));
  EXPECT_DOUBLE_EQ(back.virtual_time_s, 99.5);
  EXPECT_EQ(back.round, 7u);
  EXPECT_EQ(back.tasks_completed, 70u);
  EXPECT_EQ(back.model_parameters, c.model_parameters);
}

TEST(Checkpoint, DeserializeRejectsTruncation) {
  auto blob = serialize_checkpoint(sample_checkpoint(1.0, 1));
  blob.resize(blob.size() - 3);
  EXPECT_THROW(deserialize_checkpoint(blob), util::CheckError);
}

TEST(CheckpointStore, WriteAndLatest) {
  TempDir dir("ckpt");
  CheckpointStore store(dir.str());
  EXPECT_FALSE(store.latest().has_value());
  EXPECT_EQ(store.write(sample_checkpoint(10.0, 1)), 1);
  EXPECT_EQ(store.write(sample_checkpoint(20.0, 2)), 2);
  auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 2u);
  EXPECT_EQ(store.checkpoint_count(), 2u);
}

TEST(CheckpointStore, ResumesNumberingAcrossInstances) {
  TempDir dir("ckpt_resume");
  {
    CheckpointStore store(dir.str());
    store.write(sample_checkpoint(1.0, 1));
    store.write(sample_checkpoint(2.0, 2));
  }
  CheckpointStore reopened(dir.str());
  EXPECT_EQ(reopened.write(sample_checkpoint(3.0, 3)), 3);
  EXPECT_EQ(reopened.latest()->round, 3u);
}

TEST(CheckpointStore, PruneKeepsMostRecent) {
  TempDir dir("ckpt_prune");
  CheckpointStore store(dir.str());
  for (std::uint64_t r = 1; r <= 5; ++r) store.write(sample_checkpoint(r * 1.0, r));
  store.prune(2);
  EXPECT_EQ(store.checkpoint_count(), 2u);
  EXPECT_EQ(store.latest()->round, 5u);
}

TEST(CheckpointStore, NoTmpFilesLeftBehind) {
  TempDir dir("ckpt_tmp");
  CheckpointStore store(dir.str());
  store.write(sample_checkpoint(1.0, 1));
  for (const auto& entry : fs::directory_iterator(dir.str()))
    EXPECT_NE(entry.path().extension(), ".tmp");
}

TEST(CheckpointStore, CreatesDirectoryIfMissing) {
  TempDir dir("ckpt_mkdir");
  std::string nested = dir.str() + "/a/b";
  CheckpointStore store(nested);
  store.write(sample_checkpoint(1.0, 1));
  EXPECT_TRUE(fs::exists(nested));
}

}  // namespace
}  // namespace flint::store
