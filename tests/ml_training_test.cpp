// Integration tests: do the optimizer + losses + models actually learn?
#include <gtest/gtest.h>

#include "flint/ml/loss.h"
#include "flint/ml/metrics.h"
#include "flint/ml/model.h"
#include "flint/ml/optimizer.h"
#include "flint/util/rng.h"

namespace flint::ml {
namespace {

/// Linearly separable binary data: label = 1 iff w.x > 0 for the GIVEN
/// ground-truth w (shared between train and test splits).
std::vector<Example> separable_data(std::size_t n, const std::vector<float>& w,
                                    util::Rng& rng) {
  std::size_t dim = w.size();
  std::vector<Example> out(n);
  for (auto& e : out) {
    e.dense.resize(dim);
    double dot = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      e.dense[j] = static_cast<float>(rng.normal());
      dot += static_cast<double>(e.dense[j]) * w[j];
    }
    e.label = dot > 0.0 ? 1.0f : 0.0f;
  }
  return out;
}

double eval_aupr(Model& model, const std::vector<Example>& data, std::size_t dim) {
  Batch batch = Batch::from_examples(data, dim);
  Tensor logits = model.forward(batch);
  std::vector<float> scores, labels;
  for (std::size_t i = 0; i < data.size(); ++i) {
    scores.push_back(stable_sigmoid(logits.at(i, 0)));
    labels.push_back(data[i].label);
  }
  return average_precision(scores, labels);
}

TEST(Training, MlpLearnsSeparableData) {
  util::Rng rng(1);
  constexpr std::size_t kDim = 8;
  std::vector<float> w(kDim);
  for (float& v : w) v = static_cast<float>(rng.normal());
  auto train = separable_data(400, w, rng);
  auto test = separable_data(200, w, rng);

  FeedForwardConfig cfg;
  cfg.dense_dim = kDim;
  cfg.hidden = {16};
  FeedForwardModel model(cfg);
  model.init(rng);

  double before = eval_aupr(model, test, kDim);
  SgdOptimizer opt(0.9, 0.0);
  for (int epoch = 0; epoch < 40; ++epoch) {
    for (std::size_t start = 0; start < train.size(); start += 32) {
      std::size_t end = std::min(train.size(), start + 32);
      Batch batch =
          Batch::from_examples(std::span(train).subspan(start, end - start), kDim);
      Tensor logits = model.forward(batch);
      auto loss = bce_with_logits(logits, batch.labels);
      model.zero_grad();
      model.backward(loss.d_logits);
      opt.step(model.parameters(), 0.03);
    }
  }
  double after = eval_aupr(model, test, kDim);
  EXPECT_GT(after, 0.95);
  EXPECT_GT(after, before);
}

TEST(Training, LossDecreasesMonotonically) {
  util::Rng rng(2);
  constexpr std::size_t kDim = 4;
  std::vector<float> w(kDim);
  for (float& v : w) v = static_cast<float>(rng.normal());
  auto train = separable_data(200, w, rng);
  FeedForwardConfig cfg;
  cfg.dense_dim = kDim;
  cfg.hidden = {8};
  FeedForwardModel model(cfg);
  model.init(rng);
  SgdOptimizer opt;
  Batch batch = Batch::from_examples(train, kDim);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 100; ++step) {
    Tensor logits = model.forward(batch);
    auto loss = bce_with_logits(logits, batch.labels);
    if (step == 0) first = loss.loss;
    last = loss.loss;
    model.zero_grad();
    model.backward(loss.d_logits);
    opt.step(model.parameters(), 0.2);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(Training, RankingImprovesNdcg) {
  util::Rng rng(3);
  constexpr std::size_t kDim = 6;
  std::vector<float> w(kDim);
  for (float& v : w) v = static_cast<float>(rng.normal());
  // Groups of 6 candidates; relevance follows w*.x ranking.
  auto make_group = [&](std::vector<Example>& out) {
    std::vector<std::pair<double, std::size_t>> scored;
    std::size_t base = out.size();
    for (std::size_t c = 0; c < 6; ++c) {
      Example e;
      e.dense.resize(kDim);
      double dot = 0.0;
      for (std::size_t j = 0; j < kDim; ++j) {
        e.dense[j] = static_cast<float>(rng.normal());
        dot += static_cast<double>(e.dense[j]) * w[j];
      }
      scored.push_back({dot, base + c});
      out.push_back(std::move(e));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    out[scored[0].second].label = 2.0f;
    out[scored[1].second].label = 1.0f;
  };
  std::vector<Example> train;
  for (int g = 0; g < 80; ++g) make_group(train);
  std::vector<Example> test;
  for (int g = 0; g < 30; ++g) make_group(test);

  FeedForwardConfig cfg;
  cfg.dense_dim = kDim;
  cfg.hidden = {12};
  FeedForwardModel model(cfg);
  model.init(rng);

  auto mean_ndcg = [&](const std::vector<Example>& data) {
    double total = 0.0;
    std::size_t groups = data.size() / 6;
    for (std::size_t g = 0; g < groups; ++g) {
      std::span<const Example> members(&data[g * 6], 6);
      Batch batch = Batch::from_examples(members, kDim);
      Tensor logits = model.forward(batch);
      std::vector<float> scores, labels;
      for (std::size_t i = 0; i < 6; ++i) {
        scores.push_back(logits.at(i, 0));
        labels.push_back(members[i].label);
      }
      total += ndcg_at_k(scores, labels, 10);
    }
    return total / static_cast<double>(groups);
  };

  double before = mean_ndcg(test);
  SgdOptimizer opt(0.9, 0.0);
  for (int epoch = 0; epoch < 25; ++epoch) {
    for (std::size_t g = 0; g < train.size() / 6; ++g) {
      std::span<const Example> members(&train[g * 6], 6);
      Batch batch = Batch::from_examples(members, kDim);
      Tensor logits = model.forward(batch);
      auto loss = pairwise_ranking_loss(logits, batch.labels);
      model.zero_grad();
      model.backward(loss.d_logits);
      opt.step(model.parameters(), 0.05);
    }
  }
  double after = mean_ndcg(test);
  EXPECT_GT(after, before + 0.05);
  EXPECT_GT(after, 0.85);
}

TEST(Optimizer, MomentumAcceleratesOnQuadratic) {
  // Single-parameter quadratic: momentum should reach the optimum faster.
  auto run = [](double momentum) {
    Parameter p(1, 1);
    p.value[0] = 10.0f;
    SgdOptimizer opt(momentum, 0.0);
    std::vector<Parameter*> params = {&p};
    for (int i = 0; i < 50; ++i) {
      p.grad[0] = 2.0f * p.value[0];  // d/dx x^2
      opt.step(params, 0.02);
      p.grad.zero();
    }
    return std::abs(p.value[0]);
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Parameter p(1, 1);
  p.value[0] = 1.0f;
  SgdOptimizer opt(0.0, 0.1);
  std::vector<Parameter*> params = {&p};
  for (int i = 0; i < 10; ++i) opt.step(params, 0.1);  // zero gradient
  EXPECT_LT(p.value[0], 1.0f);
  EXPECT_GT(p.value[0], 0.0f);
}

TEST(Optimizer, ClipGradientsBoundsNorm) {
  Parameter p(1, 4);
  for (std::size_t i = 0; i < 4; ++i) p.grad[i] = 10.0f;
  std::vector<Parameter*> params = {&p};
  double pre_norm = clip_gradients(params, 1.0);
  EXPECT_NEAR(pre_norm, 20.0, 1e-4);
  double post = 0.0;
  for (std::size_t i = 0; i < 4; ++i) post += p.grad[i] * p.grad[i];
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-5);
}

TEST(Optimizer, ClipLeavesSmallGradientsAlone) {
  Parameter p(1, 2);
  p.grad[0] = 0.1f;
  std::vector<Parameter*> params = {&p};
  clip_gradients(params, 1.0);
  EXPECT_FLOAT_EQ(p.grad[0], 0.1f);
}

}  // namespace
}  // namespace flint::ml
