#include "flint/data/proxy_writer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "flint/data/synthetic_tasks.h"
#include "flint/util/check.h"

namespace flint::data {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() / ("flint_pw_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

FederatedDataset sample_dataset(std::size_t clients, Domain domain = Domain::kAds) {
  util::Rng rng(9);
  SyntheticTaskConfig cfg;
  cfg.domain = domain;
  cfg.clients = clients;
  cfg.mean_records = 12;
  cfg.std_records = 8;
  cfg.dense_dim = 5;
  cfg.vocab = 50;
  cfg.test_examples = 10;
  return make_synthetic_task(cfg, rng).train;
}

void expect_same_examples(const ClientDataset& a, const ClientDataset& b) {
  EXPECT_EQ(a.client_id, b.client_id);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.examples[i].dense, b.examples[i].dense);
    EXPECT_EQ(a.examples[i].tokens, b.examples[i].tokens);
    EXPECT_EQ(a.examples[i].label, b.examples[i].label);
    EXPECT_EQ(a.examples[i].label2, b.examples[i].label2);
    EXPECT_EQ(a.examples[i].group, b.examples[i].group);
  }
}

TEST(ProxyWriter, SingleFileRoundTrip) {
  TempDir dir("roundtrip");
  auto dataset = sample_dataset(10);
  std::string path = dir.str() + "/part.flpt";
  std::uint64_t bytes = write_partition_file(path, dataset.clients());
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(fs::file_size(path)), bytes);

  auto back = read_partition_file(path);
  ASSERT_EQ(back.size(), dataset.client_count());
  for (std::size_t i = 0; i < back.size(); ++i)
    expect_same_examples(dataset.client_at(i), back[i]);
}

TEST(ProxyWriter, TokenDataRoundTrip) {
  TempDir dir("tokens");
  auto dataset = sample_dataset(8, Domain::kMessaging);
  std::string path = dir.str() + "/tokens.flpt";
  write_partition_file(path, dataset.clients());
  auto back = read_partition_file(path);
  for (std::size_t i = 0; i < back.size(); ++i)
    expect_same_examples(dataset.client_at(i), back[i]);
}

TEST(ProxyWriter, RankingGroupsRoundTrip) {
  TempDir dir("groups");
  auto dataset = sample_dataset(6, Domain::kSearch);
  std::string path = dir.str() + "/groups.flpt";
  write_partition_file(path, dataset.clients());
  auto back = read_partition_file(path);
  for (std::size_t i = 0; i < back.size(); ++i)
    expect_same_examples(dataset.client_at(i), back[i]);
}

TEST(ProxyWriter, PartitionsPerExecutor) {
  TempDir dir("parts");
  auto dataset = sample_dataset(20);
  auto partitioning = partition_round_robin(dataset, 4);
  auto sizes = write_partitions(dataset, partitioning, dir.str());
  ASSERT_EQ(sizes.size(), 4u);

  // Exactly one file per executor, not one per client (the §3.4 point).
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    EXPECT_EQ(entry.path().extension(), ".flpt");
    ++files;
  }
  EXPECT_EQ(files, 4u);

  // Every executor's clients come back intact and owned by that executor.
  std::size_t total_clients = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    auto clients = read_partition(dir.str(), p);
    total_clients += clients.size();
    for (const auto& c : clients)
      EXPECT_EQ(partitioning.executor_of(c.client_id), static_cast<int>(p));
  }
  EXPECT_EQ(total_clients, dataset.client_count());
}

TEST(ProxyWriter, GroupedLayoutBeatsPerClientFiles) {
  auto dataset = sample_dataset(100);
  auto partitioning = partition_round_robin(dataset, 4);
  TempDir dir("sizes");
  auto sizes = write_partitions(dataset, partitioning, dir.str());
  std::uint64_t grouped = 0;
  for (auto s : sizes) grouped += s;
  std::uint64_t naive = naive_per_client_bytes(dataset);
  EXPECT_LT(grouped, naive);  // per-file overhead dominates tiny client files
}

TEST(ProxyWriter, RejectsGarbageFiles) {
  TempDir dir("garbage");
  std::string path = dir.str() + "/bad.flpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a partition";
  }
  EXPECT_THROW(read_partition_file(path), util::CheckError);
  EXPECT_THROW(read_partition_file(dir.str() + "/missing.flpt"), util::CheckError);
}

TEST(ProxyWriter, EmptyPartitionRoundTrips) {
  TempDir dir("empty");
  std::string path = dir.str() + "/empty.flpt";
  write_partition_file(path, {});
  EXPECT_TRUE(read_partition_file(path).empty());
}

}  // namespace
}  // namespace flint::data
