#include <gtest/gtest.h>

#include <sstream>

#include "flint/util/check.h"
#include "flint/util/config.h"
#include "flint/util/csv.h"
#include "flint/util/histogram.h"
#include "flint/util/logging.h"
#include "flint/util/table.h"

namespace flint::util {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BinsAndEdgeClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-100.0);  // clamps into the first bin
  h.add(100.0);   // clamps into the last bin
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  auto peak = h.normalized_to_peak();
  EXPECT_DOUBLE_EQ(peak[0], 1.0);
  EXPECT_DOUBLE_EQ(peak[1], 1.0 / 3.0);
  auto sum = h.normalized_to_sum();
  EXPECT_DOUBLE_EQ(sum[0] + sum[1], 1.0);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.2);
  std::string s = h.render(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(LogCcdf, MonotoneNonIncreasing) {
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  auto ccdf = log_ccdf(values, 10);
  ASSERT_EQ(ccdf.size(), 10u);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LE(ccdf[i].fraction, ccdf[i - 1].fraction);
    EXPECT_GT(ccdf[i].value, ccdf[i - 1].value);
  }
  EXPECT_DOUBLE_EQ(ccdf.back().fraction, 0.0);  // nothing exceeds the max
}

// -------------------------------------------------------------------- Table

TEST(Table, RendersAlignedCells) {
  Table t({"NAME", "VALUE"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::string s = t.render();
  EXPECT_NE(s.find("NAME"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(5.0), "5");
  EXPECT_EQ(Table::num(4.98, 2), "4.98");
  EXPECT_EQ(Table::count(1024950), "1,024,950");
  EXPECT_EQ(Table::count(-1234), "-1,234");
  EXPECT_EQ(Table::pct(0.221), "22.1%");
}

TEST(Banner, ContainsTitle) {
  EXPECT_NE(banner("Table 3").find("Table 3"), std::string::npos);
}

// ---------------------------------------------------------------------- CSV

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RoundTripsThroughParse) {
  std::ostringstream out;
  CsvWriter w(out);
  std::vector<std::string> row = {"x", "a,b", "with \"quotes\"", ""};
  w.write_row(row);
  std::string line = out.str();
  line.pop_back();  // strip trailing newline
  EXPECT_EQ(parse_csv_line(line), row);
}

TEST(Csv, ParsesCrlf) {
  auto cells = parse_csv_line("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

// ------------------------------------------------------------------- Config

TEST(Config, ParseAndTypedAccess) {
  Config cfg = Config::parse(R"(
    # a comment
    cohort_size = 130
    lr = 0.05
    async = true
    name = ads-v2
  )");
  EXPECT_EQ(cfg.get_int("cohort_size", 0), 130);
  EXPECT_DOUBLE_EQ(cfg.get_double("lr", 0.0), 0.05);
  EXPECT_TRUE(cfg.get_bool("async", false));
  EXPECT_EQ(cfg.get_string("name", ""), "ads-v2");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
}

TEST(Config, RequireThrowsOnMissing) {
  Config cfg;
  EXPECT_THROW(cfg.require_string("nope"), CheckError);
}

TEST(Config, RoundTripsThroughToString) {
  Config cfg;
  cfg.set_int("a", 5);
  cfg.set_bool("b", false);
  cfg.set_double("c", 1.25);
  Config again = Config::parse(cfg.to_string());
  EXPECT_EQ(again.get_int("a", 0), 5);
  EXPECT_FALSE(again.get_bool("b", true));
  EXPECT_DOUBLE_EQ(again.get_double("c", 0.0), 1.25);
}

TEST(Config, BadLinesThrow) {
  EXPECT_THROW(Config::parse("no_equals_here"), CheckError);
  EXPECT_THROW(Config::parse("= value"), CheckError);
}

TEST(Config, BadBoolThrows) {
  Config cfg = Config::parse("flag = maybe");
  EXPECT_THROW(cfg.get_bool("flag", false), CheckError);
}

// -------------------------------------------------------------------- Check

TEST(Check, ThrowsWithContext) {
  try {
    FLINT_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(FLINT_CHECK(2 + 2 == 4));
}

// ------------------------------------------------------------------ Logging

TEST(Logging, LevelGate) {
  Logger::instance().set_level(LogLevel::kError);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
  // Below-threshold logging must not crash (output suppressed).
  FLINT_LOG_INFO << "hidden";
  Logger::instance().set_level(LogLevel::kWarn);
}

TEST(Logging, EnabledCheckMatchesLevel) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kOff));
}

TEST(Logging, SinkCapturesTimestampedTaggedLine) {
  std::ostringstream captured;
  Logger::instance().set_sink(&captured);
  Logger::instance().set_level(LogLevel::kInfo);
  FLINT_LOG_INFO << "payload " << 42;
  FLINT_LOG_DEBUG << "filtered out";
  Logger::instance().set_sink(nullptr);  // restore stderr
  Logger::instance().set_level(LogLevel::kWarn);

  const std::string line = captured.str();
  EXPECT_NE(line.find("[INFO] payload 42"), std::string::npos) << line;
  EXPECT_EQ(line.find("filtered"), std::string::npos);
  // Wall-clock stamp: "[YYYY-MM-DDTHH:MM:SS.mmm]" prefix.
  ASSERT_GE(line.size(), 25u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], ']');
}

TEST(Logging, MacroBindsInUnbracedIf) {
  std::ostringstream captured;
  Logger::instance().set_sink(&captured);
  Logger::instance().set_level(LogLevel::kInfo);
  // The dangling-else shape must keep this statement well-formed: the log
  // belongs to the inner if, the else to the outer one.
  bool flag = false;
  if (flag)
    FLINT_LOG_INFO << "not reached";
  else
    FLINT_LOG_INFO << "else branch";
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_NE(captured.str().find("else branch"), std::string::npos);
  EXPECT_EQ(captured.str().find("not reached"), std::string::npos);
}

}  // namespace
}  // namespace flint::util
