#include "flint/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace flint::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, WorkerIndexIsNposOffPoolAndValidOnPool) {
  EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::npos);
  EXPECT_EQ(ThreadPool::current_pool(), nullptr);
  ThreadPool pool(3);
  std::vector<std::future<std::size_t>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([] { return ThreadPool::worker_index(); }));
  for (auto& f : futures) {
    std::size_t index = f.get();
    EXPECT_LT(index, 3u);
  }
  auto on_pool = pool.submit([&pool] { return ThreadPool::current_pool() == &pool; });
  EXPECT_TRUE(on_pool.get());
  // The submitting thread is still off-pool.
  EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::npos);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
  }  // dtor must run everything already queued
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, BusySecondsAccumulate) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }));
  for (auto& f : futures) f.get();
  double total = pool.busy_seconds(0) + pool.busy_seconds(1);
  EXPECT_GT(total, 0.0);
}

TEST(ThreadPool, ObserverCallbacksFire) {
  std::atomic<int> submitted{0};
  std::atomic<int> depth_updates{0};
  std::atomic<int> busy_updates{0};
  std::atomic<int> worker_busy_updates{0};
  {
    ThreadPoolObserver obs;
    obs.on_task_submitted = [&submitted] { submitted.fetch_add(1); };
    obs.on_queue_depth = [&depth_updates](std::size_t) { depth_updates.fetch_add(1); };
    obs.on_busy_workers = [&busy_updates](std::size_t) { busy_updates.fetch_add(1); };
    obs.on_worker_busy = [&worker_busy_updates](std::size_t worker, double busy_s) {
      EXPECT_LT(worker, 2u);
      EXPECT_GE(busy_s, 0.0);
      worker_busy_updates.fetch_add(1);
    };
    ThreadPool pool(2, std::move(obs));
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) futures.push_back(pool.submit([] {}));
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(submitted.load(), 20);
  EXPECT_GT(depth_updates.load(), 0);
  EXPECT_GT(busy_updates.load(), 0);
  EXPECT_EQ(worker_busy_updates.load(), 20);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<int> values(10'000);
  std::iota(values.begin(), values.end(), 1);
  long expected = std::accumulate(values.begin(), values.end(), 0L);

  ThreadPool pool(4);
  constexpr std::size_t kShard = 1000;
  std::vector<std::future<long>> futures;
  for (std::size_t begin = 0; begin < values.size(); begin += kShard) {
    std::size_t end = std::min(begin + kShard, values.size());
    futures.push_back(pool.submit([&values, begin, end] {
      long sum = 0;
      for (std::size_t i = begin; i < end; ++i) sum += values[i];
      return sum;
    }));
  }
  long total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace flint::util
