#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flint/obs/client_ledger.h"
#include "flint/obs/metrics.h"
#include "flint/obs/status.h"
#include "flint/obs/telemetry.h"
#include "flint/obs/trace.h"

namespace flint::obs {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- JSON checker
//
// Minimal recursive-descent JSON parser: accepts exactly RFC-ish JSON and
// nothing else, so a malformed byte anywhere in an emitted trace or JSONL
// line fails the test. Values are not materialized — we only validate.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --------------------------------------------------------------- Registry

TEST(ObsRegistry, CounterGaugeBasics) {
  MetricRegistry registry;
  registry.counter("a").add(3);
  registry.counter("a").add(4);
  EXPECT_EQ(registry.counter("a").value(), 7u);
  registry.gauge("g").set(2.5);
  registry.gauge("g").set(-1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), -1.0);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(ObsRegistry, HandleIsStableAcrossInsertions) {
  MetricRegistry registry;
  Counter& a = registry.counter("stable");
  for (int i = 0; i < 100; ++i) registry.counter("filler." + std::to_string(i));
  a.add(1);  // must still be the live object after 100 more insertions
  EXPECT_EQ(registry.counter("stable").value(), 1u);
  EXPECT_EQ(&registry.counter("stable"), &a);
}

TEST(ObsRegistry, HistogramEdgeBucketsSaturate) {
  MetricRegistry registry;
  HistogramMetric& h = registry.histogram("h", 0.0, 10.0, 10);
  h.record(-100.0);  // below lo -> first bucket
  h.record(100.0);   // above hi -> last bucket
  h.record(5.0);
  h.record(std::nan(""));  // dropped
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
}

TEST(ObsRegistry, SnapshotIsSortedAndTyped) {
  MetricRegistry registry;
  registry.gauge("z.gauge").set(1.0);
  registry.counter("a.counter").add(5);
  registry.histogram("m.hist", 0.0, 1.0, 4).record(0.3);
  auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.counter");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[1].name, "m.hist");
  EXPECT_EQ(samples[1].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[2].name, "z.gauge");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kGauge);
}

TEST(ObsRegistry, ConcurrentMixedOperations) {
  // Hammer one registry from several threads with lookups, recording, and
  // snapshots at once. Run under the TSan preset (scripts/run_sanitizers.sh
  // thread) this is the subsystem's data-race gate; in a plain build it
  // still checks no update is lost.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  MetricRegistry registry;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.counter("shared").add(1);
        registry.counter("own." + std::to_string(t)).add(1);
        registry.gauge("depth").set(static_cast<double>(i));
        registry.histogram("lat", 0.0, 1000.0, 20).record(static_cast<double>(i % 1000));
        if (i % 1024 == 0) (void)registry.snapshot();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.histogram("lat", 0.0, 1000.0, 20).count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(registry.counter("own." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
}

TEST(ObsRegistry, JsonlLinesAreValidJson) {
  MetricRegistry registry;
  registry.counter("c\"quoted\\name").add(1);  // name needing escapes
  registry.gauge("g").set(std::nan(""));        // non-finite -> null
  registry.histogram("h", 0.0, 2.0, 2).record(1.0);
  for (const auto& sample : registry.snapshot()) {
    std::string line = sample.to_jsonl(12.5);
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    EXPECT_NE(line.find("\"t_virtual_s\":12.5"), std::string::npos) << line;
  }
}

// ----------------------------------------------------------------- Tracer

// ----------------------------------------------------------- client ledger

TEST(ObsLedger, AttributesOutcomesAndBytesPerClient) {
  ClientLedger ledger;
  ledger.register_client(1, /*tier=*/0, /*cohort=*/2, /*executor=*/0);
  ledger.register_client(2, /*tier=*/1, /*cohort=*/0, /*executor=*/1);
  ledger.on_task_finished(1, LedgerOutcome::kSucceeded, 10.0, 1000);
  ledger.on_task_finished(1, LedgerOutcome::kStale, 5.0, 1000);
  ledger.on_task_finished(2, LedgerOutcome::kInterrupted, 2.0, 1000);

  auto s = ledger.summary();
  EXPECT_EQ(s.totals.tasks_succeeded, 1u);
  EXPECT_EQ(s.totals.tasks_stale, 1u);
  EXPECT_EQ(s.totals.tasks_interrupted, 1u);
  EXPECT_EQ(s.totals.clients, 2u);
  EXPECT_NEAR(s.totals.compute_s, 17.0, 1e-12);
  // Stale + interrupted compute is wasted; succeeded compute is not.
  EXPECT_NEAR(s.totals.wasted_compute_s, 7.0, 1e-12);
  // Downloads happen for every task; uploads only for tasks that ran to the
  // end (succeeded or stale) — interruptions never send the update.
  EXPECT_EQ(s.totals.bytes_down, 3000u);
  EXPECT_EQ(s.totals.bytes_up, 2000u);
}

TEST(ObsLedger, UnregisteredClientsStillReconcileInTotals) {
  ClientLedger ledger;
  ledger.on_task_finished(99, LedgerOutcome::kFailed, 1.5, 500);
  auto s = ledger.summary();
  EXPECT_EQ(s.totals.tasks_failed, 1u);
  EXPECT_NEAR(s.totals.compute_s, 1.5, 1e-12);
  // Lands in the default tier/cohort bucket rather than disappearing.
  std::uint64_t tier_failed = 0;
  for (const auto& row : s.by_tier) tier_failed += row.tasks_failed;
  EXPECT_EQ(tier_failed, 1u);
}

TEST(ObsLedger, SummaryIsInsertionOrderInvariant) {
  // Rollup doubles must fold in client-id order, not hash-map insertion
  // order: a fresh run populates the ledger in task-completion order while a
  // resumed run restores accounts in client-id order, and float addition is
  // not bitwise-commutative. Feed identical accounts in two different orders
  // and require bit-identical summaries.
  // Values chosen to be non-representable sums so reordering actually
  // perturbs the low bits if folding order leaks through.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t c = 0; c < 64; ++c) ids.push_back(c);

  auto build = [&](const std::vector<std::uint64_t>& order) {
    ClientLedger ledger;
    for (std::uint64_t c : order) {
      ledger.register_client(c, static_cast<std::uint32_t>(c % 3),
                             static_cast<std::uint32_t>(c % 3),
                             static_cast<std::uint32_t>(c % 4));
      ledger.on_task_finished(c, LedgerOutcome::kSucceeded, 0.1 + 0.007 * c, 100 + c);
      ledger.on_task_finished(c, LedgerOutcome::kStale, 1.0 / (1.0 + c), 50);
    }
    return ledger.summary(/*top_k=*/8);
  };

  std::vector<std::uint64_t> reversed(ids.rbegin(), ids.rend());
  std::vector<std::uint64_t> shuffled = ids;
  // Deterministic shuffle (no std::random_device): multiplicative stride.
  for (std::size_t i = 0; i < shuffled.size(); ++i)
    std::swap(shuffled[i], shuffled[(i * 37 + 11) % shuffled.size()]);

  auto a = build(ids);
  auto b = build(reversed);
  auto c = build(shuffled);

  auto expect_bits_equal = [](const LedgerRollup& x, const LedgerRollup& y) {
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.clients, y.clients);
    // Bit-identical, not approximately equal: memcmp via exact comparison.
    EXPECT_EQ(x.compute_s, y.compute_s);
    EXPECT_EQ(x.wasted_compute_s, y.wasted_compute_s);
    EXPECT_EQ(x.bytes_down, y.bytes_down);
    EXPECT_EQ(x.bytes_up, y.bytes_up);
  };
  expect_bits_equal(a.totals, b.totals);
  expect_bits_equal(a.totals, c.totals);
  ASSERT_EQ(a.by_tier.size(), b.by_tier.size());
  for (std::size_t i = 0; i < a.by_tier.size(); ++i) {
    expect_bits_equal(a.by_tier[i], b.by_tier[i]);
    expect_bits_equal(a.by_tier[i], c.by_tier[i]);
  }
  ASSERT_EQ(a.by_executor.size(), b.by_executor.size());
  for (std::size_t i = 0; i < a.by_executor.size(); ++i)
    expect_bits_equal(a.by_executor[i], b.by_executor[i]);
  ASSERT_EQ(a.stragglers.size(), b.stragglers.size());
  for (std::size_t i = 0; i < a.stragglers.size(); ++i)
    EXPECT_EQ(a.stragglers[i].client_id, b.stragglers[i].client_id);
}

TEST(ObsLedger, PooledEntriesRoundTripThroughSlots) {
  // The SoA pool behind the ledger (DESIGN.md §17): slots are first-touch
  // order, entry_at() must reassemble exactly what the column writes stored,
  // and re-registration keeps the account while overwriting classification.
  ClientLedger ledger;
  ledger.on_task_finished(7, LedgerOutcome::kSucceeded, 2.0, 100);  // slot 0
  ledger.register_client(3, 1, 2, 4);                               // slot 1
  ledger.on_task_finished(3, LedgerOutcome::kStale, 1.0, 50);
  ASSERT_EQ(ledger.client_count(), 2u);

  ClientLedgerEntry first = ledger.entry_at(0);
  EXPECT_EQ(first.client_id, 7u);
  EXPECT_EQ(first.tier, 0u);  // unregistered -> default bucket
  EXPECT_EQ(first.tasks_succeeded, 1u);
  EXPECT_EQ(first.bytes_up, 100u);

  ClientLedgerEntry second = ledger.entry_at(1);
  EXPECT_EQ(second.client_id, 3u);
  EXPECT_EQ(second.tier, 1u);
  EXPECT_EQ(second.cohort, 2u);
  EXPECT_EQ(second.executor, 4u);
  EXPECT_EQ(second.tasks_stale, 1u);
  EXPECT_NEAR(second.wasted_compute_s, 1.0, 1e-12);

  ledger.register_client(7, 2, 1, 3);  // reclassify; account must survive
  first = ledger.entry_at(0);
  EXPECT_EQ(first.tier, 2u);
  EXPECT_EQ(first.tasks_succeeded, 1u);
}

TEST(ObsLedger, LargePopulationReconcilesAndStaysDense) {
  // 200k touched clients through the interner + chunked columns: totals must
  // reconcile exactly and every slot must reassemble its own client id (a
  // collision or a mis-grown probe table would cross-wire accounts).
  constexpr std::uint64_t kClients = 200'000;
  ClientLedger ledger;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    // Sparse, non-contiguous ids exercise the open-addressing path.
    std::uint64_t id = c * 2654435761ull + 17;
    ledger.on_task_finished(id, c % 2 == 0 ? LedgerOutcome::kSucceeded : LedgerOutcome::kStale,
                            0.5, 10);
  }
  ASSERT_EQ(ledger.client_count(), kClients);
  for (std::uint32_t slot = 0; slot < 1000; ++slot) {
    ClientLedgerEntry e = ledger.entry_at(slot);
    EXPECT_EQ(e.client_id, static_cast<std::uint64_t>(slot) * 2654435761ull + 17);
    EXPECT_EQ(e.tasks_finished(), 1u);
  }
  auto s = ledger.summary();
  EXPECT_EQ(s.totals.clients, kClients);
  EXPECT_EQ(s.totals.tasks_succeeded, kClients / 2);
  EXPECT_EQ(s.totals.tasks_stale, kClients / 2);
  EXPECT_EQ(s.totals.bytes_down, kClients * 10);
  EXPECT_NEAR(s.totals.compute_s, kClients * 0.5, 1e-6);
}

TEST(ObsLedger, StragglersRankedByWastedCompute) {
  ClientLedger ledger;
  for (std::uint64_t c = 0; c < 20; ++c)
    ledger.on_task_finished(c, LedgerOutcome::kStale, static_cast<double>(c), 0);
  auto s = ledger.summary(/*top_k=*/5);
  ASSERT_EQ(s.stragglers.size(), 5u);
  EXPECT_EQ(s.stragglers.front().client_id, 19u);
  for (std::size_t i = 1; i < s.stragglers.size(); ++i)
    EXPECT_GE(s.stragglers[i - 1].wasted_compute_s, s.stragglers[i].wasted_compute_s);
}

// ----------------------------------------------------- histogram quantiles

TEST(ObsQuantile, EmptyHistogramIsZero) {
  MetricRegistry r;
  auto& h = r.histogram("empty", 0.0, 10.0, 10);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(histogram_quantile(0.5, 0.0, 10.0, {0, 0, 0}), 0.0);
  EXPECT_EQ(histogram_quantile(0.5, 0.0, 10.0, {}), 0.0);
}

TEST(ObsQuantile, UniformSamplesInterpolateLinearly) {
  MetricRegistry r;
  auto& h = r.histogram("lat", 0.0, 10.0, 10);
  // 100 samples spread uniformly over [0, 10): 10 per unit-wide bucket.
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) * 0.1);
  EXPECT_NEAR(h.quantile(0.50), 5.0, 1e-12);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 1e-12);
  EXPECT_NEAR(h.quantile(0.99), 9.9, 1e-12);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(ObsQuantile, EstimatesClampToConfiguredRange) {
  MetricRegistry r;
  auto& h = r.histogram("spiky", 0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h.record(1e6);  // far beyond hi: edge bucket
  h.record(-5.0);                              // below lo: first bucket
  EXPECT_LE(h.quantile(0.99), 10.0);
  EXPECT_GE(h.quantile(0.01), 0.0);
}

TEST(ObsQuantile, SampleQuantileMatchesLiveHistogram) {
  MetricRegistry r;
  auto& h = r.histogram("dur", 0.0, 4.0, 8);
  for (int i = 0; i < 40; ++i) h.record(static_cast<double>(i % 4) + 0.25);
  auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].kind, MetricSample::Kind::kHistogram);
  for (double q : {0.5, 0.95, 0.99})
    EXPECT_NEAR(snap[0].quantile(q), h.quantile(q), 1e-12) << q;
}

TEST(ObsQuantile, NonHistogramSamplesReadZero) {
  MetricRegistry r;
  r.counter("c").add(100);
  r.gauge("g").set(3.0);
  for (const auto& s : r.snapshot()) EXPECT_EQ(s.quantile(0.95), 0.0) << s.name;
}

TEST(ObsTrace, ChromeTraceParsesBack) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    Tracer::SpanToken token = tracer.begin_span(/*virtual_now_s=*/i * 1.0);
    tracer.end_span(token, /*virtual_now_s=*/i * 1.0 + 0.5, "round \"x\"", "fl");
  }
  EXPECT_EQ(tracer.event_count(), 5u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text.substr(0, 400);
  // Dual-clock export: every span appears on the wall track and the
  // virtual track, plus one process_name metadata event per track.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("wall clock"), std::string::npos);
  EXPECT_NE(text.find("virtual clock"), std::string::npos);
}

TEST(ObsTrace, DropsWhenFull) {
  Tracer tracer(/*max_events=*/2);
  tracer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    Tracer::SpanToken token = tracer.begin_span(0.0);
    tracer.end_span(token, 1.0, "s", "t");
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(ObsTrace, LabeledProcessDerivesUniqueTracksAndMetadata) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_process_info("executor-1", /*sort_index=*/1);
  tracer.set_clock_offset_us(123.5);
  Tracer::SpanToken token = tracer.begin_span(0.0);
  tracer.end_span(token, 1.0, "labeled", "test");
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text.substr(0, 400);
  // Labeled tracks carry the role in their names and pids derived from the
  // OS pid (never the single-process defaults 1/2), so merged traces cannot
  // collide across processes.
  EXPECT_NE(text.find("executor-1 wall clock"), std::string::npos);
  EXPECT_NE(text.find("executor-1 virtual clock"), std::string::npos);
  EXPECT_EQ(text.find("\"pid\":1,"), std::string::npos) << text.substr(0, 400);
  EXPECT_EQ(text.find("\"pid\":2,"), std::string::npos) << text.substr(0, 400);
  // The merge tool reads its alignment inputs from the trailing flint object.
  EXPECT_NE(text.find("\"flint\":{\"role\":\"executor-1\""), std::string::npos);
  EXPECT_NE(text.find("\"clock_offset_us\":123.5"), std::string::npos);
  EXPECT_DOUBLE_EQ(tracer.clock_offset_us(), 123.5);
}

TEST(ObsTrace, MintedSpanIdsStartAtBaseAndSerialize) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_span_id_base(std::uint64_t{5} << 32);
  const std::uint64_t first = tracer.mint_span_id();
  const std::uint64_t second = tracer.mint_span_id();
  EXPECT_EQ(first, (std::uint64_t{5} << 32) + 1);
  EXPECT_EQ(second, first + 1);

  Tracer::SpanToken token = tracer.begin_span(0.0);
  tracer.end_span(token, 0.0, "ided", "test", /*trace_id=*/77, /*span_id=*/first,
                  /*parent_span_id=*/3);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"trace_id\":77"), std::string::npos) << text.substr(0, 400);
  EXPECT_NE(text.find("\"span_id\":" + std::to_string(first)), std::string::npos);
  EXPECT_NE(text.find("\"parent_span_id\":3"), std::string::npos);
  ASSERT_EQ(tracer.events_snapshot().size(), 1u);
  EXPECT_EQ(tracer.events_snapshot()[0].span_id, first);
}

// -------------------------------------------------------------- Telemetry

TEST(ObsTelemetry, DisabledTracingProducesNoFile) {
  const fs::path out = fs::temp_directory_path() / "flint_obs_disabled_trace.json";
  fs::remove(out);
  TelemetryConfig config;
  config.tracing_enabled = false;
  Telemetry telemetry(config);
  {
    ScopedTelemetry scope(&telemetry);
    FLINT_TRACE_SPAN("never.recorded", "test");
    obs::advance_virtual_time(1.0);
  }
  EXPECT_EQ(telemetry.tracer().event_count(), 0u);
  EXPECT_FALSE(telemetry.write_trace(out.string()));
  EXPECT_FALSE(fs::exists(out));
}

TEST(ObsTelemetry, NoAmbientContextIsANoOp) {
  ASSERT_EQ(current(), nullptr);
  // None of these may crash or allocate a registry out of thin air.
  add_counter("ghost");
  record_histogram("ghost.h", 1.0, 0.0, 10.0, 10);
  advance_virtual_time(42.0);
  FLINT_TRACE_SPAN("ghost.span", "test");
}

TEST(ObsTelemetry, SpanMacroRecordsDualClocks) {
  TelemetryConfig config;
  Telemetry telemetry(config);
  {
    ScopedTelemetry scope(&telemetry);
    telemetry.set_virtual_now(10.0);
    {
      FLINT_TRACE_SPAN("timed", "test");
      telemetry.set_virtual_now(12.0);
    }
  }
  EXPECT_EQ(telemetry.tracer().event_count(), 1u);
  std::ostringstream os;
  telemetry.tracer().write_chrome_trace(os);
  // Virtual duration 2s -> 2e6 virtual-track microseconds.
  EXPECT_NE(os.str().find("\"virtual_dur_s\":2"), std::string::npos) << os.str();
}

TEST(ObsTelemetry, CachedHandlesSurviveContextSwap) {
  CachedCounter cached;
  {
    TelemetryConfig config;
    Telemetry first(config);
    ScopedTelemetry scope(&first);
    ASSERT_NE(cached.resolve("swap.counter"), nullptr);
    cached.resolve("swap.counter")->add(1);
    EXPECT_EQ(first.metrics().counter("swap.counter").value(), 1u);
  }
  // First telemetry is gone; the cache must re-resolve, not dangle.
  EXPECT_EQ(cached.resolve("swap.counter"), nullptr);
  TelemetryConfig config;
  Telemetry second(config);
  ScopedTelemetry scope(&second);
  ASSERT_NE(cached.resolve("swap.counter"), nullptr);
  cached.resolve("swap.counter")->add(5);
  EXPECT_EQ(second.metrics().counter("swap.counter").value(), 5u);
}

TEST(ObsTelemetry, VirtualTimeSnapshotCadence) {
  TelemetryConfig config;
  config.snapshot_every_virtual_s = 100.0;
  Telemetry telemetry(config);
  ScopedTelemetry scope(&telemetry);
  add_counter("cadence.counter");
  advance_virtual_time(50.0);   // before first boundary
  EXPECT_EQ(telemetry.snapshot_row_count(), 0u);
  advance_virtual_time(150.0);  // crosses 100
  EXPECT_EQ(telemetry.snapshot_row_count(), 1u);
  advance_virtual_time(450.0);  // crosses 200,300,400 -> one catch-up snapshot
  EXPECT_GE(telemetry.snapshot_row_count(), 2u);
}

TEST(ObsTelemetry, MetricsJsonlRoundTrip) {
  const fs::path out = fs::temp_directory_path() / "flint_obs_metrics.jsonl";
  fs::remove(out);
  TelemetryConfig config;
  Telemetry telemetry(config);
  {
    ScopedTelemetry scope(&telemetry);
    add_counter("file.counter", 2);
    record_histogram("file.hist", 3.0, 0.0, 10.0, 5);
    telemetry.set_virtual_now(7.0);
  }
  // write_metrics_jsonl takes the final snapshot itself: 1 snapshot x 2 series.
  ASSERT_TRUE(telemetry.write_metrics_jsonl(out.string()));
  std::istringstream lines(read_file(out));
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
  fs::remove(out);
}

// --------------------------------------------------------- status stream

TEST(ObsStatus, ReporterWritesValidFleetLines) {
  const fs::path out = fs::temp_directory_path() / "flint_obs_status.jsonl";
  fs::remove(out);
  TelemetryConfig config;
  config.status_out = out.string();
  Telemetry telemetry(config);
  {
    ScopedTelemetry scope(&telemetry);
    set_gauge("fl.round", 3.0);
    set_gauge("fl.tasks_in_flight", 5.0);
    set_gauge("rpc.executor.0.alive", 1.0);
    set_gauge("rpc.executor.0.outstanding", 2.0);
    set_gauge("rpc.executor.1.alive", 0.0);
    add_counter("rpc.leases_served", 17);
    telemetry.maybe_status_line(/*force=*/true);
  }
  ASSERT_NE(telemetry.status(), nullptr);
  EXPECT_GE(telemetry.status()->lines_written(), std::size_t{1});

  std::istringstream lines(read_file(out));
  std::string line;
  std::string last;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    last = line;
  }
  ASSERT_FALSE(last.empty());
  EXPECT_NE(last.find("\"round\":3"), std::string::npos) << last;
  EXPECT_NE(last.find("\"tasks_in_flight\":5"), std::string::npos) << last;
  EXPECT_NE(last.find("\"executors_alive\":1"), std::string::npos) << last;
  EXPECT_NE(last.find("\"executors_lost\":1"), std::string::npos) << last;
  EXPECT_NE(last.find("\"updates_total\":17"), std::string::npos) << last;
  EXPECT_NE(last.find("\"executors\":["), std::string::npos) << last;
  fs::remove(out);
}

TEST(ObsStatus, ReporterHonorsWallCadence) {
  const fs::path out = fs::temp_directory_path() / "flint_obs_status_cadence.jsonl";
  fs::remove(out);
  TelemetryConfig config;
  config.status_out = out.string();
  config.status_every_wall_s = 3600.0;  // nothing non-forced after the first line
  Telemetry telemetry(config);
  ScopedTelemetry scope(&telemetry);
  telemetry.maybe_status_line();  // first call always reports
  telemetry.maybe_status_line();  // inside the hour window: suppressed
  ASSERT_NE(telemetry.status(), nullptr);
  EXPECT_EQ(telemetry.status()->lines_written(), std::size_t{1});
  telemetry.maybe_status_line(/*force=*/true);
  EXPECT_EQ(telemetry.status()->lines_written(), std::size_t{2});
  fs::remove(out);
}

TEST(ObsStatus, DisabledWithoutPathOrMetrics) {
  TelemetryConfig no_path;
  Telemetry a(no_path);
  EXPECT_EQ(a.status(), nullptr);
  a.maybe_status_line(/*force=*/true);  // must be a safe no-op

  TelemetryConfig no_metrics;
  no_metrics.status_out =
      (fs::temp_directory_path() / "flint_obs_status_off.jsonl").string();
  no_metrics.metrics_enabled = false;
  Telemetry b(no_metrics);
  EXPECT_EQ(b.status(), nullptr);
}

}  // namespace
}  // namespace flint::obs
