#include "flint/device/benchmark_harness.h"

#include <gtest/gtest.h>

#include "flint/util/stats.h"

namespace flint::device {
namespace {

TEST(BenchmarkHarness, MemoryIntensityKnownForAllZooModels) {
  for (const auto& spec : ml::model_zoo()) EXPECT_NO_THROW(model_memory_intensity(spec.id));
  EXPECT_THROW(model_memory_intensity('Q'), util::CheckError);
  EXPECT_LT(model_memory_intensity('A'), 0.0);
  EXPECT_GT(model_memory_intensity('E'), 0.0);
}

TEST(BenchmarkHarness, EffectiveSpeedTiltsWithAffinity) {
  DeviceProfile memory_strong;
  memory_strong.speed_multiplier = 1.0;
  memory_strong.memory_affinity = 0.8;
  DeviceProfile memory_weak = memory_strong;
  memory_weak.memory_affinity = -0.8;
  // On a memory-bound task, the memory-strong device is faster.
  EXPECT_LT(effective_speed(memory_strong, 0.9), effective_speed(memory_weak, 0.9));
  // On a compute-bound task the ranking flips (Figure 4's point).
  EXPECT_GT(effective_speed(memory_strong, -0.9), effective_speed(memory_weak, -0.9));
}

TEST(BenchmarkHarness, FleetReportAggregatesMatchCalibration) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(1);
  const auto& spec = ml::model_spec('B');
  auto report = simulate_fleet_benchmark(spec, catalog, 5000, rng);
  EXPECT_EQ(report.per_device.size(), 27u);
  EXPECT_EQ(report.model_id, 'B');
  // Fleet mean should land near the calibrated base (affinity tilt and
  // jitter shift it somewhat).
  EXPECT_NEAR(report.mean_time_s, spec.calibration.base_time_per_5k_s,
              spec.calibration.base_time_per_5k_s * 0.35);
  // Heterogeneity: stdev/mean in the same regime as the paper (~0.7).
  EXPECT_GT(report.stdev_time_s / report.mean_time_s, 0.35);
  EXPECT_GT(report.mean_cpu_pct, 0.0);
  EXPECT_NEAR(report.mean_memory_mb, spec.calibration.memory_mb,
              spec.calibration.memory_mb * 0.1);
}

TEST(BenchmarkHarness, RecordCountScalesTime) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng_a(2), rng_b(2);
  const auto& spec = ml::model_spec('A');
  auto r5k = simulate_fleet_benchmark(spec, catalog, 5000, rng_a);
  auto r10k = simulate_fleet_benchmark(spec, catalog, 10000, rng_b);
  EXPECT_NEAR(r10k.mean_time_s / r5k.mean_time_s, 2.0, 0.01);
}

TEST(BenchmarkHarness, TaskDependentDeviceRanking) {
  // Figure 4: a device can be fast for one task and slow for another.
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(3);
  auto report_a = simulate_fleet_benchmark(ml::model_spec('A'), catalog, 5000, rng);
  auto report_c = simulate_fleet_benchmark(ml::model_spec('C'), catalog, 5000, rng);
  // Rank devices by time under each task; at least one pair must flip.
  auto rank_of = [](const FleetBenchmarkReport& r) {
    std::vector<std::size_t> order(r.per_device.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return r.per_device[x].train_time_s < r.per_device[y].train_time_s;
    });
    std::vector<std::size_t> rank(order.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
    return rank;
  };
  auto ra = rank_of(report_a);
  auto rc = rank_of(report_c);
  int flips = 0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (ra[i] != rc[i]) ++flips;
  EXPECT_GT(flips, 5);
}

TEST(BenchmarkHarness, HostMicrobenchmarkMeasuresRealTraining) {
  util::Rng rng(4);
  auto model = ml::build_zoo_model('A', rng);
  double seconds = measure_host_training_time_s(*model, 256, rng);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 30.0);  // tiny model must be quick on any host
}

TEST(BenchmarkHarness, HostMicrobenchmarkTokenOnlyModel) {
  util::Rng rng(5);
  auto model = ml::build_zoo_model('C', rng);
  EXPECT_GT(measure_host_training_time_s(*model, 64, rng), 0.0);
}

}  // namespace
}  // namespace flint::device
