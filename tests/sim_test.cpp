#include <gtest/gtest.h>

#include "flint/sim/event_queue.h"
#include "flint/sim/executor.h"
#include "flint/sim/fault_injector.h"
#include "flint/sim/leader.h"
#include "flint/sim/scheduler.h"
#include "flint/sim/sim_metrics.h"
#include "flint/store/checkpoint.h"

#include <cmath>
#include <filesystem>
#include <limits>

namespace flint::sim {
namespace {

// --------------------------------------------------------------- EventQueue

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&order, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), util::CheckError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), util::CheckError);
}

TEST(EventQueue, RunUntilAdvancesClockExactly) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(10.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunWithBudgetStops) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.schedule(static_cast<double>(i), [&] { ++fired; });
  q.run(3);
  EXPECT_EQ(fired, 3);
}

// ---------------------------------------------------------- ArrivalScheduler

device::AvailabilityTrace simple_trace() {
  std::vector<device::AvailabilityWindow> windows = {
      {10, 0, 0.0, 100.0},
      {11, 1, 50.0, 150.0},
      {12, 2, 200.0, 300.0},
  };
  return device::AvailabilityTrace(std::move(windows));
}

TEST(ArrivalScheduler, StreamsInStartOrder) {
  auto trace = simple_trace();
  ArrivalScheduler sched(trace);
  auto a = sched.next(0.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->client_id, 10u);
  EXPECT_DOUBLE_EQ(a->time, 0.0);
  auto b = sched.next(0.0);
  EXPECT_EQ(b->client_id, 11u);
  EXPECT_DOUBLE_EQ(b->time, 50.0);  // not available before its window
  auto c = sched.next(60.0);
  EXPECT_EQ(c->client_id, 12u);
  EXPECT_FALSE(sched.next(0.0).has_value());
}

TEST(ArrivalScheduler, OpenWindowArrivesImmediately) {
  auto trace = simple_trace();
  ArrivalScheduler sched(trace);
  auto a = sched.next(75.0);  // client 10's window is open at 75
  EXPECT_EQ(a->client_id, 10u);
  EXPECT_DOUBLE_EQ(a->time, 75.0);
}

TEST(ArrivalScheduler, SkipsExpiredWindows) {
  auto trace = simple_trace();
  ArrivalScheduler sched(trace);
  auto a = sched.next(160.0);  // windows of 10 and 11 have closed
  EXPECT_EQ(a->client_id, 12u);
  EXPECT_EQ(sched.remaining_windows(), 0u);
}

TEST(ArrivalScheduler, RequeueReoffersWithinWindow) {
  auto trace = simple_trace();
  ArrivalScheduler sched(trace);
  auto a = sched.next(0.0);
  sched.requeue(*a, 30.0);
  auto again = sched.next(0.0);
  // Requeued client 10 at t=30 comes before client 11 at t=50.
  EXPECT_EQ(again->client_id, 10u);
  EXPECT_DOUBLE_EQ(again->time, 30.0);
}

TEST(ArrivalScheduler, RequeuePastWindowEndDropped) {
  auto trace = simple_trace();
  ArrivalScheduler sched(trace);
  auto a = sched.next(0.0);
  sched.requeue(*a, 100.0);  // window ends at 100
  auto next = sched.next(0.0);
  EXPECT_EQ(next->client_id, 11u);
}

TEST(ArrivalScheduler, PeekDoesNotConsume) {
  auto trace = simple_trace();
  ArrivalScheduler sched(trace);
  auto t1 = sched.peek_time(0.0);
  auto t2 = sched.peek_time(0.0);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(*t1, *t2);
  auto a = sched.next(0.0);
  EXPECT_DOUBLE_EQ(a->time, *t1);
}

// ------------------------------------------------------------- ExecutorPool

TEST(ExecutorPool, DefaultHashAssignment) {
  ExecutorPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.executor_of(5), 1u);
  EXPECT_EQ(pool.executor_of(8), 0u);
}

TEST(ExecutorPool, ExplicitPartitioning) {
  ExecutorPool pool(2);
  data::ExecutorPartitioning parts;
  parts.partitions = {{5, 7}, {6}};
  pool.set_partitioning(parts);
  EXPECT_EQ(pool.executor_of(5), 0u);
  EXPECT_EQ(pool.executor_of(6), 1u);
  EXPECT_EQ(pool.executor_of(7), 0u);
}

TEST(ExecutorPool, PartitionCountMismatchThrows) {
  ExecutorPool pool(2);
  data::ExecutorPartitioning parts;
  parts.partitions = {{1}};
  EXPECT_THROW(pool.set_partitioning(parts), util::CheckError);
}

TEST(ExecutorPool, HealthWindows) {
  ExecutorPool pool(3);
  pool.add_outage({1, 100.0, 200.0});
  EXPECT_TRUE(pool.healthy_at(1, 50.0));
  EXPECT_FALSE(pool.healthy_at(1, 150.0));
  EXPECT_TRUE(pool.healthy_at(1, 200.0));
  EXPECT_TRUE(pool.healthy_at(0, 150.0));
  EXPECT_FALSE(pool.all_healthy_at(150.0));
  EXPECT_TRUE(pool.all_healthy_at(250.0));
}

TEST(ExecutorPool, NextAllHealthySkipsOverlappingOutages) {
  ExecutorPool pool(2);
  pool.add_outage({0, 100.0, 200.0});
  pool.add_outage({1, 150.0, 300.0});
  EXPECT_DOUBLE_EQ(pool.next_all_healthy(120.0), 300.0);
  EXPECT_DOUBLE_EQ(pool.next_all_healthy(50.0), 50.0);
}

TEST(ExecutorPool, TaskAccounting) {
  ExecutorPool pool(2);
  pool.record_task(0);
  pool.record_task(0);
  pool.record_task(1);
  EXPECT_EQ(pool.tasks_run(0), 2u);
  EXPECT_EQ(pool.total_tasks_run(), 3u);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, PlansRespectHorizonAndRates) {
  util::Rng rng(1);
  FaultPlanConfig cfg;
  cfg.mean_time_between_failures_s = 3600.0;
  cfg.mean_outage_s = 60.0;
  cfg.horizon_s = 24.0 * 3600.0;
  auto outages = plan_faults(10, cfg, rng);
  // ~24 failures per executor-day expected: 10 executors -> ~240.
  EXPECT_GT(outages.size(), 120u);
  EXPECT_LT(outages.size(), 480u);
  for (const auto& o : outages) {
    EXPECT_LT(o.executor, 10u);
    EXPECT_GT(o.end, o.start);
    EXPECT_LE(o.end, cfg.horizon_s);
  }
}

// --------------------------------------------------------------- SimMetrics

TEST(SimMetrics, OutcomeAccounting) {
  SimMetrics m;
  m.on_task_started();
  m.on_task_started();
  m.on_task_started();
  TaskResult r;
  r.spent_compute_s = 10.0;
  r.outcome = TaskOutcome::kSucceeded;
  m.on_task_finished(r);
  r.outcome = TaskOutcome::kStale;
  m.on_task_finished(r);
  r.outcome = TaskOutcome::kInterrupted;
  m.on_task_finished(r);
  EXPECT_EQ(m.tasks_started(), 3u);
  EXPECT_EQ(m.tasks_succeeded(), 1u);
  EXPECT_EQ(m.tasks_stale(), 1u);
  EXPECT_EQ(m.tasks_interrupted(), 1u);
  EXPECT_DOUBLE_EQ(m.client_compute_s(), 30.0);
  EXPECT_NEAR(m.waste_fraction(), 2.0 / 3.0, 1e-9);
  EXPECT_NE(m.summary().find("started=3"), std::string::npos);
}

TEST(SimMetrics, RoundDurationsAndThroughput) {
  SimMetrics m;
  m.on_round({1, 0.0, 10.0, 5, 0.0});
  m.on_round({2, 10.0, 30.0, 5, 1.0});
  EXPECT_EQ(m.aggregations(), 2u);
  EXPECT_DOUBLE_EQ(m.mean_round_duration_s(), 15.0);
  EXPECT_DOUBLE_EQ(m.updates_per_second(100.0), 0.1);
}

TEST(SimMetrics, DegenerateDenominatorsYieldZeroNotNan) {
  SimMetrics m;
  // No tasks started: waste is 0, not 0/0.
  EXPECT_DOUBLE_EQ(m.waste_fraction(), 0.0);
  // Degenerate horizons: 0, not a throw or inf/NaN.
  m.on_round({1, 0.0, 10.0, 5, 0.0});
  EXPECT_DOUBLE_EQ(m.updates_per_second(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.updates_per_second(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(m.updates_per_second(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_DOUBLE_EQ(m.updates_per_second(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_FALSE(std::isnan(m.waste_fraction()));
}

// ------------------------------------------------------------------- Leader

TEST(Leader, CheckpointCadence) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "flint_leader_ckpt_test";
  fs::remove_all(dir);
  store::CheckpointStore ckpt(dir.string());

  auto trace = simple_trace();
  LeaderConfig cfg;
  cfg.executor_count = 2;
  cfg.checkpoint_every_rounds = 2;
  cfg.checkpoint_store = &ckpt;
  Leader leader(cfg, trace);
  std::vector<float> params = {1.0f};
  for (std::uint64_t round = 1; round <= 5; ++round)
    leader.on_aggregation(round, params, round * 3);
  EXPECT_EQ(leader.checkpoints_written(), 2u);  // rounds 2 and 4
  auto latest = ckpt.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 4u);
  fs::remove_all(dir);
}

TEST(Leader, CadenceWithoutStoreThrows) {
  auto trace = simple_trace();
  LeaderConfig cfg;
  cfg.checkpoint_every_rounds = 5;
  EXPECT_THROW(Leader(cfg, trace), util::CheckError);
}

TEST(EventQueue, AdvanceToFastForwardsWithoutExecuting) {
  EventQueue q;
  int fired = 0;
  q.advance_to(5.0);  // empty queue: just moves the clock
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  q.schedule(10.0, [&] { ++fired; });
  q.advance_to(8.0);
  EXPECT_DOUBLE_EQ(q.now(), 8.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, AdvanceToPastPendingEventThrows) {
  EventQueue q;
  q.schedule(3.0, [] {});
  EXPECT_THROW(q.advance_to(4.0), util::CheckError);
}

TEST(ArrivalScheduler, SnapshotRestoreRoundTrip) {
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < 6; ++c) windows.push_back({c, 0, c * 10.0, c * 10.0 + 100.0});
  device::AvailabilityTrace trace(windows);

  ArrivalScheduler a(trace);
  // Consume some trace, requeue two arrivals at the same retry time so the
  // insertion-order tie-break is exercised across the round trip.
  auto first = a.next(0.0);
  auto second = a.next(0.0);
  ASSERT_TRUE(first && second);
  a.requeue(*second, 25.0);
  a.requeue(*first, 25.0);

  ArrivalScheduler b(trace);
  b.restore(a.cursor(), a.requeued_snapshot());
  EXPECT_EQ(b.cursor(), a.cursor());
  EXPECT_EQ(b.remaining_windows(), a.remaining_windows());
  // Both schedulers must serve identical streams from here.
  for (int i = 0; i < 8; ++i) {
    auto na = a.next(20.0);
    auto nb = b.next(20.0);
    ASSERT_EQ(na.has_value(), nb.has_value());
    if (!na) break;
    EXPECT_EQ(na->client_id, nb->client_id);
    EXPECT_EQ(na->time, nb->time);
    EXPECT_EQ(na->window_end, nb->window_end);
  }
}

TEST(Leader, DispatchGateFollowsExecutorHealth) {
  auto trace = simple_trace();
  LeaderConfig cfg;
  cfg.executor_count = 2;
  Leader leader(cfg, trace);
  leader.executors().add_outage({0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(leader.dispatch_gate(15.0), 20.0);
  EXPECT_DOUBLE_EQ(leader.dispatch_gate(5.0), 5.0);
}

}  // namespace
}  // namespace flint::sim
