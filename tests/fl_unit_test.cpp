#include <gtest/gtest.h>

#include <cmath>

#include "flint/fl/aggregator.h"
#include "flint/fl/client_selection.h"
#include "flint/fl/lr_schedule.h"
#include "flint/fl/task_duration.h"

namespace flint::fl {
namespace {

// -------------------------------------------------------------- LrSchedule

TEST(LrSchedule, Constant) {
  auto s = LrSchedule::constant(0.1);
  EXPECT_DOUBLE_EQ(s.at(0), 0.1);
  EXPECT_DOUBLE_EQ(s.at(1000), 0.1);
}

TEST(LrSchedule, ExponentialDecayContinuous) {
  auto s = LrSchedule::exponential_decay(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(10), 0.5);
  EXPECT_NEAR(s.at(5), std::pow(0.5, 0.5), 1e-12);
}

TEST(LrSchedule, ExponentialDecayStaircase) {
  auto s = LrSchedule::exponential_decay(1.0, 0.5, 10, /*staircase=*/true);
  EXPECT_DOUBLE_EQ(s.at(9), 1.0);   // first step not yet reached
  EXPECT_DOUBLE_EQ(s.at(10), 0.5);
  EXPECT_DOUBLE_EQ(s.at(19), 0.5);
  EXPECT_DOUBLE_EQ(s.at(20), 0.25);
}

TEST(LrSchedule, MinLrFloor) {
  auto s = LrSchedule::exponential_decay(1.0, 0.1, 1, false, 0.05);
  EXPECT_DOUBLE_EQ(s.at(100), 0.05);
}

TEST(LrSchedule, InverseSqrtWarmupAndDecay) {
  auto s = LrSchedule::inverse_sqrt(1.0, 10);
  EXPECT_LT(s.at(0), 0.2);                  // warming up
  EXPECT_NEAR(s.at(10), 1.0, 0.01);         // fully warm
  EXPECT_NEAR(s.at(40), 0.5, 0.01);         // 1/sqrt(4)
}

TEST(LrSchedule, RejectsBadParams) {
  EXPECT_THROW(LrSchedule::constant(0.0), util::CheckError);
  EXPECT_THROW(LrSchedule::exponential_decay(0.1, 1.5, 10), util::CheckError);
  EXPECT_THROW(LrSchedule::exponential_decay(0.1, 0.5, 0), util::CheckError);
  EXPECT_THROW(LrSchedule::inverse_sqrt(0.1, 0), util::CheckError);
}

// -------------------------------------------------------------- Aggregation

TEST(StalenessWeight, MatchesFedBuffFormula) {
  EXPECT_DOUBLE_EQ(staleness_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(staleness_weight(3), 0.5);
  EXPECT_GT(staleness_weight(1), staleness_weight(2));
}

TEST(UpdateAccumulator, WeightedMean) {
  UpdateAccumulator acc(2);
  EXPECT_TRUE(acc.empty());
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {3.0f, 2.0f};
  acc.add(a, 1.0);
  acc.add(b, 3.0);
  EXPECT_EQ(acc.count(), 2u);
  auto mean = acc.weighted_mean();
  EXPECT_NEAR(mean[0], (1.0 + 9.0) / 4.0, 1e-6);
  EXPECT_NEAR(mean[1], 6.0 / 4.0, 1e-6);
  acc.reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.weighted_mean(), util::CheckError);
}

TEST(UpdateAccumulator, DimMismatchAndBadWeight) {
  UpdateAccumulator acc(2);
  std::vector<float> wrong = {1.0f};
  EXPECT_THROW(acc.add(wrong, 1.0), util::CheckError);
  std::vector<float> ok = {1.0f, 2.0f};
  EXPECT_THROW(acc.add(ok, 0.0), util::CheckError);
}

TEST(ApplyServerUpdate, ScalesByServerLr) {
  std::vector<float> params = {1.0f, 1.0f};
  std::vector<float> delta = {0.5f, -0.5f};
  apply_server_update(params, delta, 2.0);
  EXPECT_FLOAT_EQ(params[0], 2.0f);
  EXPECT_FLOAT_EQ(params[1], 0.0f);
}

// ------------------------------------------------------------ TaskDuration

TEST(TaskDuration, FormulaComponents) {
  // Fixed bandwidth and no jitter: duration = t*E*D + 2M/N exactly.
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(8.0);  // 1 MB/s
  TaskDurationConfig cfg;
  cfg.base_time_per_example_s = 0.01;
  cfg.local_epochs = 2;
  cfg.update_bytes = 500000;  // 0.5 MB -> 2M/N = 1 s
  cfg.jitter_sigma = 1e-9;
  cfg.memory_intensity = 0.0;
  TaskDurationModel model(cfg, catalog, bw);
  util::Rng rng(1);
  // Pick a device and compute its expected multiplier.
  std::size_t dev = 0;
  double speed = device::effective_speed(catalog.profile(dev), 0.0);
  auto s = model.sample(dev, 100, rng);
  EXPECT_NEAR(s.compute_s, 0.01 * 2 * 100 * speed, 0.01 * 2 * 100 * speed * 0.01);
  EXPECT_NEAR(s.comm_s, 1.0, 1e-9);
  EXPECT_NEAR(s.total_s(), s.compute_s + s.comm_s, 1e-12);
}

TEST(TaskDuration, SlowerDevicesTakeLonger) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(100.0);
  TaskDurationConfig cfg;
  cfg.base_time_per_example_s = 0.01;
  cfg.jitter_sigma = 1e-9;
  TaskDurationModel model(cfg, catalog, bw);
  util::Rng rng(2);
  // Find fastest and slowest devices by multiplier.
  std::size_t fast = 0, slow = 0;
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    if (catalog.profile(i).speed_multiplier < catalog.profile(fast).speed_multiplier) fast = i;
    if (catalog.profile(i).speed_multiplier > catalog.profile(slow).speed_multiplier) slow = i;
  }
  EXPECT_LT(model.sample(fast, 100, rng).compute_s, model.sample(slow, 100, rng).compute_s);
}

TEST(TaskDuration, FromSpecUsesCalibration) {
  const auto& spec = ml::model_spec('B');
  auto cfg = TaskDurationModel::from_spec(spec, 3);
  EXPECT_NEAR(cfg.base_time_per_example_s, spec.calibration.base_time_per_5k_s / 5000.0, 1e-12);
  EXPECT_EQ(cfg.local_epochs, 3);
  EXPECT_NEAR(static_cast<double>(cfg.update_bytes), spec.calibration.network_mb * 1e6 / 2.0, 1.0);
  EXPECT_LT(cfg.memory_intensity, 0.0);  // B is compute-bound
}

TEST(TaskDuration, LowBandwidthDominatedByComm) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel slow_net(0.5);
  TaskDurationConfig cfg;
  cfg.base_time_per_example_s = 1e-5;
  cfg.update_bytes = 5'000'000;
  TaskDurationModel model(cfg, catalog, slow_net);
  util::Rng rng(3);
  auto s = model.sample(0, 10, rng);
  EXPECT_GT(s.comm_s, s.compute_s * 10);
}

TEST(TaskDuration, RejectsZeroExamples) {
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(10.0);
  TaskDurationModel model(TaskDurationConfig{}, catalog, bw);
  util::Rng rng(4);
  EXPECT_THROW(model.sample(0, 0, rng), util::CheckError);
}

// --------------------------------------------------------- Client selection

device::AvailabilityTrace five_client_trace() {
  std::vector<device::AvailabilityWindow> windows;
  for (std::uint64_t c = 0; c < 5; ++c)
    windows.push_back({c, 0, static_cast<double>(c) * 10.0, 1000.0});
  return device::AvailabilityTrace(std::move(windows));
}

TEST(SelectCohort, TakesEarliestArrivals) {
  auto trace = five_client_trace();
  sim::ArrivalScheduler sched(trace);
  auto cohort = select_cohort(sched, 0.0, 3, nullptr, 1000.0);
  ASSERT_EQ(cohort.size(), 3u);
  EXPECT_EQ(cohort[0].client_id, 0u);
  EXPECT_EQ(cohort[2].client_id, 2u);
}

TEST(SelectCohort, ExcludesCoolingClients) {
  auto trace = five_client_trace();
  sim::ArrivalScheduler sched(trace);
  // Client 1 is excluded until t=500.
  auto cohort = select_cohort(
      sched, 0.0, 3,
      [](std::uint64_t c) -> std::optional<sim::VirtualTime> {
        if (c == 1) return 500.0;
        return std::nullopt;
      },
      1000.0);
  ASSERT_EQ(cohort.size(), 3u);
  EXPECT_EQ(cohort[0].client_id, 0u);
  EXPECT_EQ(cohort[1].client_id, 2u);
  EXPECT_EQ(cohort[2].client_id, 3u);
  // After the exclusion lapses, client 1 is re-offered from its requeue.
  auto later = select_cohort(sched, 500.0, 1, nullptr, 1000.0);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].client_id, 1u);
}

TEST(SelectCohort, LapsedExclusionIsEligible) {
  auto trace = five_client_trace();
  sim::ArrivalScheduler sched(trace);
  // Exclusion time in the past: client stays eligible.
  auto cohort = select_cohort(
      sched, 100.0, 5,
      [](std::uint64_t) -> std::optional<sim::VirtualTime> { return 50.0; }, 1000.0);
  EXPECT_EQ(cohort.size(), 5u);
}

TEST(SelectCohort, MaxWaitLimitsLateArrivals) {
  auto trace = five_client_trace();
  sim::ArrivalScheduler sched(trace);
  // Clients arrive at 0, 10, 20, 30, 40; with max_wait 15 only 0, 10 qualify.
  auto cohort = select_cohort(sched, 0.0, 5, nullptr, 15.0);
  EXPECT_EQ(cohort.size(), 2u);
}

TEST(SelectCohort, ReturnsEmptyWhenExhausted) {
  auto trace = five_client_trace();
  sim::ArrivalScheduler sched(trace);
  select_cohort(sched, 0.0, 5, nullptr, 1000.0);
  auto cohort = select_cohort(sched, 0.0, 5, nullptr, 1000.0);
  EXPECT_TRUE(cohort.empty());
}

TEST(OvercommittedSize, CeilBehaviour) {
  EXPECT_EQ(overcommitted_size(10, 1.3), 13u);
  EXPECT_EQ(overcommitted_size(10, 1.0), 10u);
  EXPECT_EQ(overcommitted_size(3, 1.5), 5u);
  EXPECT_THROW(overcommitted_size(0, 1.3), util::CheckError);
  EXPECT_THROW(overcommitted_size(5, 0.5), util::CheckError);
}

}  // namespace
}  // namespace flint::fl
