#include <gtest/gtest.h>

#include <cmath>

#include "flint/ml/loss.h"
#include "flint/ml/metrics.h"
#include "flint/util/check.h"

namespace flint::ml {
namespace {

// ---------------------------------------------------------------------- BCE

TEST(BceWithLogits, KnownValue) {
  Tensor logits(1, 1, {0.0f});
  auto r = bce_with_logits(logits, {1.0f});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(r.d_logits.at(0, 0), 0.5f - 1.0f, 1e-6);
}

TEST(BceWithLogits, PerfectPredictionLowLoss) {
  Tensor logits(2, 1, {20.0f, -20.0f});
  auto r = bce_with_logits(logits, {1.0f, 0.0f});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(BceWithLogits, GradientSign) {
  Tensor logits(2, 1, {0.0f, 0.0f});
  auto r = bce_with_logits(logits, {1.0f, 0.0f});
  EXPECT_LT(r.d_logits.at(0, 0), 0.0f);  // push logit up for positives
  EXPECT_GT(r.d_logits.at(1, 0), 0.0f);  // push logit down for negatives
}

TEST(BceWithLogits, StableAtExtremeLogits) {
  Tensor logits(2, 1, {500.0f, -500.0f});
  auto r = bce_with_logits(logits, {0.0f, 1.0f});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 500.0, 1.0);  // ~|logit| for a confident wrong answer
}

TEST(BceWithLogits, GradientMatchesFiniteDifference) {
  Tensor logits(3, 1, {0.3f, -1.2f, 2.0f});
  std::vector<float> labels = {1.0f, 0.0f, 1.0f};
  auto r = bce_with_logits(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 3; ++i) {
    Tensor up = logits, down = logits;
    up.at(i, 0) += eps;
    down.at(i, 0) -= eps;
    double numeric =
        (bce_with_logits(up, labels).loss - bce_with_logits(down, labels).loss) / (2.0 * eps);
    EXPECT_NEAR(r.d_logits.at(i, 0), numeric, 1e-4);
  }
}

TEST(BceWithLogits, RejectsShapeMismatch) {
  Tensor logits(2, 1);
  EXPECT_THROW(bce_with_logits(logits, {1.0f}), util::CheckError);
  Tensor wide(2, 2);
  EXPECT_THROW(bce_with_logits(wide, {1.0f, 0.0f}), util::CheckError);
}

TEST(MultitaskBce, AveragesHeads) {
  Tensor logits(1, 2, {0.0f, 0.0f});
  auto r = multitask_bce(logits, {{1.0f}, {1.0f}});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);  // both heads at log 2, averaged
}

TEST(MultitaskBce, HeadWeights) {
  Tensor logits(1, 2, {0.0f, 0.0f});
  auto r = multitask_bce(logits, {{1.0f}, {1.0f}}, {1.0, 0.0});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);
  EXPECT_EQ(r.d_logits.at(0, 1), 0.0f);  // zero-weight head contributes nothing
}

// ------------------------------------------------------------------ Ranking

TEST(PairwiseRanking, PerfectOrderLowLoss) {
  Tensor logits(3, 1, {5.0f, 0.0f, -5.0f});
  auto r = pairwise_ranking_loss(logits, {2.0f, 1.0f, 0.0f});
  EXPECT_LT(r.loss, 0.05);
}

TEST(PairwiseRanking, InvertedOrderHighLoss) {
  Tensor logits(2, 1, {-5.0f, 5.0f});
  auto r = pairwise_ranking_loss(logits, {1.0f, 0.0f});
  EXPECT_GT(r.loss, 5.0);
  // The relevant item's score should be pushed up.
  EXPECT_LT(r.d_logits.at(0, 0), 0.0f);
  EXPECT_GT(r.d_logits.at(1, 0), 0.0f);
}

TEST(PairwiseRanking, NoOrderedPairsIsZero) {
  Tensor logits(2, 1, {1.0f, 2.0f});
  auto r = pairwise_ranking_loss(logits, {1.0f, 1.0f});
  EXPECT_EQ(r.loss, 0.0);
  EXPECT_EQ(r.d_logits.at(0, 0), 0.0f);
}

TEST(PairwiseRanking, GradientMatchesFiniteDifference) {
  Tensor logits(3, 1, {0.5f, -0.2f, 0.1f});
  std::vector<float> labels = {2.0f, 0.0f, 1.0f};
  auto r = pairwise_ranking_loss(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 3; ++i) {
    Tensor up = logits, down = logits;
    up.at(i, 0) += eps;
    down.at(i, 0) -= eps;
    double numeric = (pairwise_ranking_loss(up, labels).loss -
                      pairwise_ranking_loss(down, labels).loss) /
                     (2.0 * eps);
    EXPECT_NEAR(r.d_logits.at(i, 0), numeric, 1e-4);
  }
}

// ------------------------------------------------------------------ Metrics

TEST(AveragePrecision, PerfectRanking) {
  EXPECT_DOUBLE_EQ(average_precision({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AveragePrecision, KnownInterleaved) {
  // Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(average_precision({0.9f, 0.8f, 0.7f}, {1, 0, 1}), 5.0 / 6.0, 1e-9);
}

TEST(AveragePrecision, NoPositivesIsZero) {
  EXPECT_EQ(average_precision({0.5f, 0.4f}, {0, 0}), 0.0);
}

TEST(AveragePrecision, RandomScoresNearBaseRate) {
  // For random scores AP concentrates near the positive rate.
  std::vector<float> scores, labels;
  for (int i = 0; i < 2000; ++i) {
    scores.push_back(static_cast<float>((i * 2654435761u % 1000) / 1000.0));
    labels.push_back(i % 5 == 0 ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(average_precision(scores, labels), 0.2, 0.05);
}

TEST(RocAuc, PerfectAndInverted) {
  EXPECT_DOUBLE_EQ(roc_auc({0.9f, 0.1f}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.9f}, {1, 0}), 0.0);
}

TEST(RocAuc, TiesGiveHalfCredit) {
  EXPECT_DOUBLE_EQ(roc_auc({0.5f, 0.5f}, {1, 0}), 0.5);
}

TEST(RocAuc, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({0.3f, 0.7f}, {1, 1}), 0.5);
}

TEST(Ndcg, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(ndcg_at_k({3.0f, 2.0f, 1.0f}, {2, 1, 0}, 10), 1.0);
}

TEST(Ndcg, KnownSwappedValue) {
  // Labels (2, 1) ranked inverted: DCG = (2^1-1)/log2(2) + (2^2-1)/log2(3);
  // ideal = 3/log2(2) + 1/log2(3).
  double dcg = 1.0 / 1.0 + 3.0 / std::log2(3.0);
  double idcg = 3.0 / 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(ndcg_at_k({1.0f, 2.0f}, {2, 1}, 10), dcg / idcg, 1e-9);
}

TEST(Ndcg, CutoffRestrictsCredit) {
  // Relevant item at rank 3 with k=2 gets no credit.
  EXPECT_DOUBLE_EQ(ndcg_at_k({3.0f, 2.0f, 1.0f}, {0, 0, 2}, 2), 0.0);
}

TEST(Ndcg, AllZeroRelevanceIsOne) {
  EXPECT_DOUBLE_EQ(ndcg_at_k({0.5f, 0.2f}, {0, 0}, 5), 1.0);
}

TEST(LogLoss, KnownValue) {
  EXPECT_NEAR(log_loss({0.5f}, {1.0f}), std::log(2.0), 1e-6);
}

TEST(LogLoss, ClipsExtremes) {
  EXPECT_TRUE(std::isfinite(log_loss({0.0f, 1.0f}, {1.0f, 0.0f})));
}

TEST(Accuracy, Thresholding) {
  EXPECT_DOUBLE_EQ(accuracy({0.9f, 0.1f, 0.6f, 0.4f}, {1, 0, 0, 1}), 0.5);
}

TEST(StableSigmoid, MatchesNaiveInSafeRange) {
  for (float x : {-5.0f, -1.0f, 0.0f, 1.0f, 5.0f})
    EXPECT_NEAR(stable_sigmoid(x), 1.0f / (1.0f + std::exp(-x)), 1e-6);
  EXPECT_NEAR(stable_sigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(stable_sigmoid(-100.0f), 0.0f, 1e-6);
}

}  // namespace
}  // namespace flint::ml
