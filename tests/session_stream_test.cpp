// Streaming session traces and the session-generator correctness properties
// they depend on (DESIGN.md §17): every session inside the horizon whatever
// the timezone sign, a total sort order, a golden fixed-seed trace hash, and
// streaming-vs-materialized bit-equivalence on both the in-memory and the
// spill-to-disk-and-merge paths.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "flint/device/availability.h"
#include "flint/device/session_stream.h"
#include "flint/sim/scheduler.h"
#include "test_helpers.h"

namespace flint {
namespace {

namespace fs = std::filesystem;

device::SessionGeneratorConfig small_config() {
  device::SessionGeneratorConfig cfg;
  cfg.clients = 400;
  cfg.days = 3;
  return cfg;
}

void expect_session_eq(const device::Session& a, const device::Session& b) {
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.device_index, b.device_index);
  EXPECT_EQ(a.start, b.start);  // bitwise: both sides computed the same way
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.wifi, b.wifi);
  EXPECT_EQ(a.battery_pct, b.battery_pct);
  EXPECT_EQ(a.foreground, b.foreground);
}

// ------------------------------------------------ in-horizon (wrap semantics)

TEST(SessionGenerator, AllSessionsInsideHorizonForEveryTimezoneSign) {
  // Negative offsets used to push early-morning sessions to negative start
  // times; positive ones could overhang past the horizon. Circular wrapping
  // keeps every piece inside [0, days*86400).
  auto catalog = device::DeviceCatalog::standard();
  for (double tz : {-8.0, -3.5, 0.0, 5.75, 11.0}) {
    device::SessionGeneratorConfig cfg = small_config();
    cfg.timezone_offsets_h = {tz};
    cfg.timezone_weights = {1.0};
    util::Rng rng(101);
    auto log = device::generate_sessions(cfg, catalog, rng);
    const double horizon = cfg.days * device::kSecondsPerDay;
    ASSERT_FALSE(log.sessions.empty()) << "tz " << tz;
    for (const auto& s : log.sessions) {
      EXPECT_GE(s.start, 0.0) << "tz " << tz;
      EXPECT_LT(s.start, horizon) << "tz " << tz;
      EXPECT_LE(s.end, horizon) << "tz " << tz;
      EXPECT_GE(s.duration(), 1.0) << "tz " << tz;
    }
  }
}

// ----------------------------------------------------- total-order sorting

TEST(SessionGenerator, SessionOrderBreaksTiesByClientThenEnd) {
  device::Session a, b;
  a.start = b.start = 100.0;
  a.client_id = 1;
  b.client_id = 2;
  EXPECT_TRUE(device::session_order(a, b));
  EXPECT_FALSE(device::session_order(b, a));
  b.client_id = 1;
  a.end = 150.0;
  b.end = 160.0;
  EXPECT_TRUE(device::session_order(a, b));
  EXPECT_FALSE(device::session_order(b, a));
}

TEST(SessionGenerator, GeneratedLogIsStrictlySessionOrdered) {
  // Strictly: adjacent sessions must never be equivalent under the order,
  // otherwise different std::sort implementations could emit different
  // permutations of the same log.
  auto catalog = device::DeviceCatalog::standard();
  util::Rng rng(7);
  auto log = device::generate_sessions(small_config(), catalog, rng);
  for (std::size_t i = 1; i < log.sessions.size(); ++i) {
    EXPECT_TRUE(device::session_order(log.sessions[i - 1], log.sessions[i]))
        << "tie or inversion at index " << i;
  }
}

// -------------------------------------------------------- golden trace hash

std::uint64_t fnv1a_session_hash(const std::vector<device::Session>& sessions) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  for (const auto& s : sessions) {
    std::uint64_t client = s.client_id;
    std::uint64_t device = s.device_index;
    mix(&client, 8);
    mix(&device, 8);
    mix(&s.start, 8);
    mix(&s.end, 8);
    mix(&s.battery_pct, 8);
    unsigned char flags = static_cast<unsigned char>((s.wifi ? 1 : 0) | (s.foreground ? 2 : 0));
    mix(&flags, 1);
  }
  return h;
}

TEST(SessionGenerator, FixedSeedTraceMatchesGoldenHash) {
  // Any change to the generator's numerics — wrap semantics, the portable
  // Poisson/lognormal draws, the sort order — changes this hash. Bump the
  // constant ONLY for an intentional trace-format change, and say so in the
  // commit message: it invalidates every checked-in bench baseline.
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 64;
  cfg.days = 2;
  util::Rng rng(4242);
  auto log = device::generate_sessions(cfg, catalog, rng);
  EXPECT_EQ(fnv1a_session_hash(log.sessions), 0x92099c9f71ddbdbdull);
}

// ------------------------------------- streaming == materialized, both paths

TEST(SessionStream, InMemoryStreamMatchesMaterializedLog) {
  auto catalog = device::DeviceCatalog::standard();
  device::SessionStreamConfig cfg;
  cfg.generator = small_config();
  ASSERT_LE(cfg.generator.clients, cfg.clients_per_chunk);  // in-memory path

  util::Rng rng_a(55);
  util::Rng rng_b(55);
  auto log = device::generate_sessions(cfg.generator, catalog, rng_a);
  auto stream = device::make_session_stream(cfg, catalog, rng_b);
  EXPECT_EQ(stream->clients(), cfg.generator.clients);
  EXPECT_EQ(stream->horizon(), cfg.generator.days * device::kSecondsPerDay);

  std::size_t i = 0;
  while (auto s = stream->next()) {
    ASSERT_LT(i, log.sessions.size());
    expect_session_eq(*s, log.sessions[i]);
    ++i;
  }
  EXPECT_EQ(i, log.sessions.size());
  EXPECT_FALSE(stream->next().has_value());  // stays exhausted
}

TEST(SessionStream, SpilledStreamMatchesMaterializedLog) {
  auto catalog = device::DeviceCatalog::standard();
  device::SessionStreamConfig cfg;
  cfg.generator = small_config();
  cfg.clients_per_chunk = 64;  // force spill + k-way merge: 400/64 -> 7 chunks
  cfg.read_buffer_sessions = 128;  // tiny budget -> per-reader floor kicks in

  util::Rng rng_a(56);
  util::Rng rng_b(56);
  auto log = device::generate_sessions(cfg.generator, catalog, rng_a);
  auto stream = device::make_session_stream(cfg, catalog, rng_b);

  std::size_t i = 0;
  while (auto s = stream->next()) {
    ASSERT_LT(i, log.sessions.size());
    expect_session_eq(*s, log.sessions[i]);
    ++i;
  }
  EXPECT_EQ(i, log.sessions.size());
}

TEST(SessionStream, SpillDirectoryIsRemovedOnDestruction) {
  auto base = fs::temp_directory_path() / "flint_session_stream_test";
  fs::remove_all(base);
  fs::create_directories(base);
  {
    auto catalog = device::DeviceCatalog::standard();
    device::SessionStreamConfig cfg;
    cfg.generator = small_config();
    cfg.clients_per_chunk = 64;
    cfg.spill_dir = base.string();
    util::Rng rng(57);
    auto stream = device::make_session_stream(cfg, catalog, rng);
    ASSERT_TRUE(stream->next().has_value());
    EXPECT_FALSE(fs::is_empty(base));  // chunks exist while streaming
  }
  EXPECT_TRUE(fs::is_empty(base));
  fs::remove_all(base);
}

// ------------------------------------------- streamed availability windows

TEST(SessionWindowStream, MatchesBuildAvailabilityOrder) {
  auto catalog = device::DeviceCatalog::standard();
  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  criteria.min_battery_pct = 50.0;
  criteria.min_session_s = 120.0;

  util::Rng rng_a(58);
  util::Rng rng_b(58);
  auto log = device::generate_sessions(small_config(), catalog, rng_a);
  auto trace = device::build_availability(log, criteria, catalog);

  device::SessionStreamConfig cfg;
  cfg.generator = small_config();
  auto sessions = device::make_session_stream(cfg, catalog, rng_b);
  device::SessionWindowStream streamed(*sessions, criteria, catalog);

  std::size_t i = 0;
  while (auto w = streamed.next()) {
    ASSERT_LT(i, trace.windows().size());
    const auto& expect = trace.windows()[i];
    EXPECT_EQ(w->client_id, expect.client_id);
    EXPECT_EQ(w->device_index, expect.device_index);
    EXPECT_EQ(w->start, expect.start);
    EXPECT_EQ(w->end, expect.end);
    ++i;
  }
  EXPECT_EQ(i, trace.windows().size());
}

TEST(WindowOrder, BreaksTiesByClientThenEnd) {
  device::AvailabilityWindow a, b;
  a.start = b.start = 10.0;
  a.client_id = 3;
  b.client_id = 4;
  EXPECT_TRUE(device::window_order(a, b));
  b.client_id = 3;
  a.end = 20.0;
  b.end = 30.0;
  EXPECT_TRUE(device::window_order(a, b));
  EXPECT_FALSE(device::window_order(b, a));
}

// ----------------------------------- scheduler over a stream == over a trace

TEST(ArrivalScheduler, StreamBackedSchedulerMatchesTraceBacked) {
  auto catalog = device::DeviceCatalog::standard();
  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;

  util::Rng rng_a(59);
  util::Rng rng_b(59);
  auto log = device::generate_sessions(small_config(), catalog, rng_a);
  auto trace = device::build_availability(log, criteria, catalog);

  device::SessionStreamConfig cfg;
  cfg.generator = small_config();
  cfg.clients_per_chunk = 64;  // spilled, to cover the interesting path
  auto sessions = device::make_session_stream(cfg, catalog, rng_b);
  device::SessionWindowStream windows(*sessions, criteria, catalog);

  sim::ArrivalScheduler from_trace(trace);
  sim::ArrivalScheduler from_stream(windows);
  sim::VirtualTime t = 0.0;
  while (true) {
    auto a = from_trace.next(t);
    auto b = from_stream.next(t);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->client_id, b->client_id);
    EXPECT_EQ(a->device_index, b->device_index);
    EXPECT_EQ(a->time, b->time);
    EXPECT_EQ(a->window_end, b->window_end);
    t = a->time;
  }
}

}  // namespace
}  // namespace flint
