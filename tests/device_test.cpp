#include <gtest/gtest.h>

#include <cmath>

#include "flint/device/availability.h"
#include "flint/device/device_catalog.h"
#include "flint/device/hardware_distribution.h"
#include "flint/device/session_generator.h"
#include "flint/util/stats.h"

namespace flint::device {
namespace {

// ------------------------------------------------------------ DeviceCatalog

TEST(DeviceCatalog, StandardHas27Devices) {
  auto catalog = DeviceCatalog::standard();
  EXPECT_EQ(catalog.size(), 27u);
  EXPECT_EQ(catalog.devices_with_os(Os::kIos).size(), 9u);
  EXPECT_EQ(catalog.devices_with_os(Os::kAndroid).size(), 18u);
}

TEST(DeviceCatalog, SpeedNormalizedToUnitMean) {
  auto catalog = DeviceCatalog::standard();
  EXPECT_NEAR(catalog.mean_speed(), 1.0, 1e-9);
  // Heterogeneity spread comparable to Table 5's stdev/mean (~0.7).
  EXPECT_GT(catalog.stddev_speed(), 0.4);
  EXPECT_LT(catalog.stddev_speed(), 1.0);
}

TEST(DeviceCatalog, OsPassFractionMatchesTable1C) {
  auto catalog = DeviceCatalog::standard();
  // Criterion C: OS release >= Sept 2019 — paper reports 93%.
  EXPECT_NEAR(catalog.os_pass_fraction(201909), 0.93, 0.03);
  EXPECT_DOUBLE_EQ(catalog.os_pass_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(catalog.os_pass_fraction(999912), 0.0);
}

TEST(DeviceCatalog, SamplingFollowsPopularity) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(3);
  std::vector<std::size_t> counts(catalog.size(), 0);
  for (int i = 0; i < 50000; ++i) ++counts[catalog.sample_device(rng)];
  // The most popular device (iPhone 11, weight 15) must be sampled far more
  // often than the least popular (weight 2).
  std::size_t iphone11 = 0, least = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.profile(i).name == "iPhone 11") iphone11 = counts[i];
    if (catalog.profile(i).name == "Moto G5") least = counts[i];
  }
  EXPECT_GT(iphone11, least * 4);
}

TEST(DeviceCatalog, RejectsEmptyAndInvalid) {
  EXPECT_THROW(DeviceCatalog({}), util::CheckError);
  DeviceProfile bad;
  bad.speed_multiplier = 0.0;
  EXPECT_THROW(DeviceCatalog({bad}), util::CheckError);
}

// ---------------------------------------------------- HardwareDistribution

TEST(HardwareDistribution, AndroidMoreDiverseThanIos) {
  auto catalog = DeviceCatalog::standard();
  auto ios = hardware_distribution(catalog, Os::kIos);
  auto android = hardware_distribution(catalog, Os::kAndroid);
  // Figure 1's headline: Android entropy (diversity) exceeds iOS.
  EXPECT_GT(android.entropy_bits, ios.entropy_bits);
  EXPECT_GT(ios.top3_share, android.top3_share);
  // Shares sum to 1 and are sorted descending.
  for (const auto* dist : {&ios, &android}) {
    double total = 0.0;
    for (std::size_t i = 0; i < dist->shares.size(); ++i) {
      total += dist->shares[i].share;
      if (i > 0) {
        EXPECT_LE(dist->shares[i].share, dist->shares[i - 1].share);
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(HardwareDistribution, OtherShareShrinksWithLegend) {
  auto catalog = DeviceCatalog::standard();
  auto android = hardware_distribution(catalog, Os::kAndroid);
  EXPECT_GT(android.other_share(3), android.other_share(10));
  EXPECT_DOUBLE_EQ(android.other_share(100), 0.0);
}

TEST(HardwareDistribution, SampledConvergesToExact) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(5);
  auto exact = hardware_distribution(catalog, Os::kIos);
  auto sampled = sampled_hardware_distribution(catalog, Os::kIos, 200000, rng);
  EXPECT_NEAR(sampled.shares[0].share, exact.shares[0].share, 0.01);
  EXPECT_EQ(sampled.shares[0].name, exact.shares[0].name);
}

// ---------------------------------------------------------------- Sessions

TEST(DiurnalWeight, EveningPeakOvernightTrough) {
  double peak = diurnal_weight(20.0, 0.02);
  double trough = diurnal_weight(4.0, 0.02);
  EXPECT_GT(peak / trough, 10.0);
  // Lunch bump exists but is smaller than the evening peak.
  EXPECT_GT(diurnal_weight(12.5, 0.02), diurnal_weight(9.0, 0.02));
  EXPECT_LT(diurnal_weight(12.5, 0.02), peak);
}

class SessionMarginalsTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SessionMarginalsTest, WifiAndBatteryMatchConfig) {
  auto [wifi_p, battery_p] = GetParam();
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(7);
  SessionGeneratorConfig cfg;
  cfg.clients = 800;
  cfg.days = 7;
  cfg.wifi_probability = wifi_p;
  cfg.high_battery_probability = battery_p;
  SessionLog log = generate_sessions(cfg, catalog, rng);
  ASSERT_GT(log.sessions.size(), 2000u);
  double wifi = 0.0, high_battery = 0.0;
  for (const auto& s : log.sessions) {
    if (s.wifi) wifi += 1.0;
    if (s.battery_pct >= 80.0) high_battery += 1.0;
    EXPECT_GT(s.end, s.start);
    EXPECT_LT(s.device_index, catalog.size());
  }
  double n = static_cast<double>(log.sessions.size());
  EXPECT_NEAR(wifi / n, wifi_p, 0.03);
  EXPECT_NEAR(high_battery / n, battery_p, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Criteria, SessionMarginalsTest,
                         ::testing::Values(std::pair{0.70, 0.34},  // Table 1
                                           std::pair{0.5, 0.5}, std::pair{0.9, 0.1}));

TEST(SessionGenerator, SortedByStartAndWeeklyPeriodicity) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(9);
  SessionGeneratorConfig cfg;
  cfg.clients = 400;
  cfg.days = 14;
  SessionLog log = generate_sessions(cfg, catalog, rng);
  for (std::size_t i = 1; i < log.sessions.size(); ++i)
    EXPECT_GE(log.sessions[i].start, log.sessions[i - 1].start);
  EXPECT_EQ(log.client_device.size(), 400u);
  EXPECT_GT(log.total_duration(), 0.0);
}

TEST(SessionGenerator, WeekendActivityLower) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(11);
  SessionGeneratorConfig cfg;
  cfg.clients = 600;
  cfg.days = 14;
  cfg.weekend_factor = 0.5;
  SessionLog log = generate_sessions(cfg, catalog, rng);
  double weekday = 0.0, weekend = 0.0;
  for (const auto& s : log.sessions) {
    int day = static_cast<int>(s.start / kSecondsPerDay) % 7;
    (day >= 5 ? weekend : weekday) += 1.0;
  }
  // 5 weekdays vs 2 weekend days at half rate: expect ~5x the sessions.
  EXPECT_GT(weekday / weekend, 3.0);
}

// ------------------------------------------------------------- Availability

TEST(AvailabilityCriteria, Table1Percentages) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(13);
  SessionGeneratorConfig cfg;
  cfg.clients = 1500;
  cfg.days = 14;
  SessionLog log = generate_sessions(cfg, catalog, rng);

  AvailabilityCriteria wifi;
  wifi.require_wifi = true;
  AvailabilityCriteria battery;
  battery.min_battery_pct = 80.0;
  AvailabilityCriteria os;
  os.min_os_release = 201909;
  AvailabilityCriteria all;
  all.require_wifi = true;
  all.min_battery_pct = 80.0;
  all.min_os_release = 201909;

  EXPECT_NEAR(criteria_pass_fraction(log, wifi, catalog), 0.70, 0.04);
  EXPECT_NEAR(criteria_pass_fraction(log, battery, catalog), 0.34, 0.04);
  EXPECT_NEAR(criteria_pass_fraction(log, os, catalog), 0.93, 0.04);
  // A, B, C are independent in the generator: intersection ~22% (Table 1).
  EXPECT_NEAR(criteria_pass_fraction(log, all, catalog), 0.22, 0.04);
}

TEST(AvailabilityCriteria, DeviceAllowListAndMinSession) {
  auto catalog = DeviceCatalog::standard();
  Session s;
  s.device_index = 0;
  s.start = 0;
  s.end = 100;
  AvailabilityCriteria c;
  c.allowed_devices = {1, 2};
  EXPECT_FALSE(c.accepts(s, catalog));
  c.allowed_devices = {0};
  EXPECT_TRUE(c.accepts(s, catalog));
  c.min_session_s = 200.0;
  EXPECT_FALSE(c.accepts(s, catalog));
}

TEST(AvailabilityTrace, WindowQueries) {
  std::vector<AvailabilityWindow> windows = {
      {1, 0, 100.0, 200.0},
      {1, 0, 300.0, 400.0},
      {2, 0, 50.0, 500.0},
  };
  AvailabilityTrace trace(windows);
  EXPECT_EQ(trace.window_count(), 3u);
  EXPECT_EQ(trace.client_count(), 2u);
  EXPECT_TRUE(trace.is_available(1, 150.0, 10.0));
  EXPECT_FALSE(trace.is_available(1, 150.0, 100.0));  // runs past window end
  EXPECT_FALSE(trace.is_available(1, 250.0, 10.0));   // gap between windows
  EXPECT_TRUE(trace.is_available(2, 400.0, 50.0));
  EXPECT_FALSE(trace.is_available(99, 100.0, 1.0));
  EXPECT_DOUBLE_EQ(trace.horizon(), 500.0);
  auto w = trace.window_at(1, 350.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->start, 300.0);
}

TEST(AvailabilityTrace, Figure2FluctuationIsLarge) {
  auto catalog = DeviceCatalog::standard();
  util::Rng rng(17);
  SessionGeneratorConfig cfg;
  cfg.clients = 2500;
  cfg.days = 7;
  SessionLog log = generate_sessions(cfg, catalog, rng);
  AvailabilityCriteria strict;
  strict.require_wifi = true;
  strict.min_battery_pct = 80.0;
  strict.min_os_release = 201909;
  AvailabilityTrace trace = build_availability(log, strict, catalog);
  ASSERT_GT(trace.window_count(), 500u);
  // The paper reports ~14x peak-to-trough under strict criteria; accept a
  // broad band since the trough is noisy at this scale.
  double ratio = trace.peak_to_trough_ratio();
  EXPECT_GT(ratio, 5.0);
}

TEST(AvailabilityTrace, EmptyTraceBehaves) {
  AvailabilityTrace trace;
  EXPECT_EQ(trace.window_count(), 0u);
  EXPECT_EQ(trace.client_count(), 0u);
  EXPECT_DOUBLE_EQ(trace.horizon(), 0.0);
  EXPECT_FALSE(trace.is_available(0, 0.0, 1.0));
}

}  // namespace
}  // namespace flint::device
