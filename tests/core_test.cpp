#include <gtest/gtest.h>

#include <cmath>

#include "flint/core/decision_workflow.h"
#include "flint/core/experiment.h"
#include "flint/core/forecasting.h"
#include "flint/core/platform.h"
#include "test_helpers.h"

namespace flint::core {
namespace {

// ----------------------------------------------------------------- Trials

fl::AsyncConfig tiny_async_config(const data::FederatedTask& task, ml::Model& model,
                                  const device::AvailabilityTrace& trace,
                                  const device::DeviceCatalog& catalog,
                                  const net::BandwidthModel& bw) {
  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, model, trace, catalog, bw);
  cfg.inputs.max_rounds = 8;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  return cfg;
}

TEST(Trials, SummaryStatsOverSeeds) {
  util::Rng rng(1);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(40, 1e9);
  auto model = task.make_model(rng);
  auto cfg = tiny_async_config(task, *model, trace, catalog, bw);

  TrialSummary s = run_trials_fedbuff(cfg, 3);
  EXPECT_EQ(s.trials.size(), 3u);
  EXPECT_GT(s.median_metric, 0.0);
  EXPECT_GE(s.stdev_metric, 0.0);
  EXPECT_GT(s.median_duration_s, 0.0);
  EXPECT_GT(s.mean_tasks_started, 0.0);
  // Seeds differ, so at least one pair of trials should differ.
  bool any_diff = s.trials[0].final_metric != s.trials[1].final_metric ||
                  s.trials[1].final_metric != s.trials[2].final_metric;
  EXPECT_TRUE(any_diff);
}

TEST(Trials, SummarizeRejectsEmpty) {
  EXPECT_THROW(summarize_trials({}), util::CheckError);
}

// -------------------------------------------------------------- Forecasting

TEST(Forecasting, ProjectsFromRunMetrics) {
  fl::RunResult run;
  run.virtual_duration_s = 3600.0;
  sim::TaskResult tr;
  tr.spent_compute_s = 100.0;
  tr.outcome = sim::TaskOutcome::kSucceeded;
  for (int i = 0; i < 36; ++i) {
    run.metrics.on_task_started();
    run.metrics.on_task_finished(tr);
  }
  run.metrics.on_round({1, 0.0, 3600.0, 36, 0.0});

  ForecastConfig cfg;
  cfg.update_bytes = 760'000;
  ResourceForecast f = forecast_resources(run, cfg);
  EXPECT_NEAR(f.total_client_compute_h, 1.0, 1e-9);
  EXPECT_EQ(f.client_tasks_started, 36u);
  EXPECT_NEAR(f.updates_per_second, 0.01, 1e-9);
  EXPECT_NEAR(f.training_duration_h, 1.0, 1e-9);
  EXPECT_TRUE(f.fits_tee);
  EXPECT_EQ(f.aggregator_workers, 1u);
  EXPECT_GT(f.device_energy_kwh, 0.0);
  EXPECT_NE(f.summary().find("duration="), std::string::npos);
}

TEST(Forecasting, TeePaperProjection) {
  // §3.5: 610k tasks over 48h = 3.53 updates/s; 0.76MB updates = 2.68 MB/s.
  fl::RunResult run;
  run.virtual_duration_s = 48.0 * 3600.0;
  run.metrics.on_round({1, 0.0, run.virtual_duration_s, 610'000, 0.0});
  ForecastConfig cfg;
  cfg.update_bytes = 760'000;
  cfg.tee.per_update_overhead_bytes = 0;
  ResourceForecast f = forecast_resources(run, cfg);
  EXPECT_NEAR(f.updates_per_second, 3.53, 0.01);
  EXPECT_NEAR(f.aggregation_mbytes_per_s, 2.68, 0.01);
}

TEST(Forecasting, ZeroRoundRunForecastsFiniteZeros) {
  // A run that never got off the ground (no tasks, no rounds, zero horizon)
  // must project zeros, not NaN from 0/0 divisions.
  fl::RunResult run;
  ResourceForecast f = forecast_resources(run, ForecastConfig{});
  EXPECT_EQ(f.total_client_compute_h, 0.0);
  EXPECT_EQ(f.wasted_client_compute_h, 0.0);
  EXPECT_EQ(f.client_tasks_started, 0u);
  EXPECT_EQ(f.mean_task_compute_s, 0.0);
  EXPECT_EQ(f.device_energy_kwh, 0.0);
  EXPECT_EQ(f.training_duration_h, 0.0);
  EXPECT_EQ(f.updates_per_second, 0.0);
  EXPECT_EQ(f.aggregator_workers, 0u);
  EXPECT_TRUE(std::isfinite(f.aggregation_mbytes_per_s));
}

TEST(Forecasting, ZeroDurationHorizonStaysFinite) {
  // Tasks ran but the virtual clock never advanced (degenerate trace):
  // throughput-derived projections must be 0, not compute/0.
  fl::RunResult run;
  run.virtual_duration_s = 0.0;
  sim::TaskResult tr;
  tr.spent_compute_s = 5.0;
  tr.outcome = sim::TaskOutcome::kSucceeded;
  run.metrics.on_task_started();
  run.metrics.on_task_finished(tr);
  ResourceForecast f = forecast_resources(run, ForecastConfig{});
  EXPECT_GT(f.total_client_compute_h, 0.0);
  EXPECT_EQ(f.updates_per_second, 0.0);
  EXPECT_EQ(f.training_duration_h, 0.0);
  EXPECT_TRUE(std::isfinite(f.mean_task_compute_s));
  EXPECT_TRUE(std::isfinite(f.aggregation_mbytes_per_s));
}

TEST(Forecasting, PopulationScalingGrowsDeviceSideOnly) {
  fl::RunResult run;
  run.virtual_duration_s = 3600.0;
  sim::TaskResult tr;
  tr.spent_compute_s = 100.0;
  tr.outcome = sim::TaskOutcome::kSucceeded;
  for (int i = 0; i < 36; ++i) {
    run.metrics.on_task_started();
    run.metrics.on_task_finished(tr);
  }
  run.metrics.on_round({1, 0.0, 3600.0, 36, 0.0});

  ForecastConfig base;
  ForecastConfig scaled = base;
  scaled.simulated_population = 1000.0;
  scaled.target_population = 10'000.0;
  EXPECT_NEAR(scaled.population_scale(), 10.0, 1e-12);

  ResourceForecast f1 = forecast_resources(run, base);
  ResourceForecast f10 = forecast_resources(run, scaled);
  // Device-side totals and aggregate throughput scale with the cohort...
  EXPECT_NEAR(f10.total_client_compute_h, f1.total_client_compute_h * 10.0, 1e-9);
  EXPECT_EQ(f10.client_tasks_started, f1.client_tasks_started * 10);
  EXPECT_NEAR(f10.updates_per_second, f1.updates_per_second * 10.0, 1e-9);
  EXPECT_NEAR(f10.device_energy_kwh, f1.device_energy_kwh * 10.0, 1e-9);
  // ...while per-task means and the cadence-bound duration do not.
  EXPECT_NEAR(f10.mean_task_compute_s, f1.mean_task_compute_s, 1e-12);
  EXPECT_NEAR(f10.training_duration_h, f1.training_duration_h, 1e-12);
}

TEST(Forecasting, PopulationScalingShrinksWhenTargetSmaller) {
  fl::RunResult run;
  run.virtual_duration_s = 3600.0;
  sim::TaskResult tr;
  tr.spent_compute_s = 100.0;
  tr.outcome = sim::TaskOutcome::kSucceeded;
  for (int i = 0; i < 40; ++i) {
    run.metrics.on_task_started();
    run.metrics.on_task_finished(tr);
  }
  run.metrics.on_round({1, 0.0, 3600.0, 40, 0.0});

  ForecastConfig cfg;
  cfg.simulated_population = 4000.0;
  cfg.target_population = 1000.0;  // pilot smaller than the simulation
  EXPECT_NEAR(cfg.population_scale(), 0.25, 1e-12);
  ResourceForecast f = forecast_resources(run, cfg);
  EXPECT_EQ(f.client_tasks_started, 10u);
  EXPECT_NEAR(f.total_client_compute_h, 40.0 * 100.0 / 3600.0 * 0.25, 1e-9);
  EXPECT_TRUE(std::isfinite(f.updates_per_second));
}

TEST(Forecasting, PopulationScalingDisabledWhenUnset) {
  ForecastConfig cfg;
  EXPECT_EQ(cfg.population_scale(), 1.0);
  cfg.simulated_population = 500.0;  // target still unset
  EXPECT_EQ(cfg.population_scale(), 1.0);
  cfg.simulated_population = 0.0;
  cfg.target_population = 500.0;  // simulated unset
  EXPECT_EQ(cfg.population_scale(), 1.0);
  cfg.simulated_population = -3.0;  // nonsense disables rather than flips sign
  EXPECT_EQ(cfg.population_scale(), 1.0);
}

TEST(Forecasting, WasteFractionDrivesWastedCompute) {
  fl::RunResult run;
  run.virtual_duration_s = 100.0;
  sim::TaskResult good;
  good.spent_compute_s = 10.0;
  good.outcome = sim::TaskOutcome::kSucceeded;
  sim::TaskResult bad = good;
  bad.outcome = sim::TaskOutcome::kStale;
  run.metrics.on_task_started();
  run.metrics.on_task_finished(good);
  run.metrics.on_task_started();
  run.metrics.on_task_finished(bad);
  ResourceForecast f = forecast_resources(run, ForecastConfig{});
  EXPECT_NEAR(f.wasted_client_compute_h, f.total_client_compute_h * 0.5, 1e-9);
}

// --------------------------------------------------------- DecisionWorkflow

TEST(DecisionWorkflow, RunsStagesInCanonicalOrder) {
  DecisionWorkflow wf;
  std::vector<Stage> ran;
  for (Stage s : DecisionWorkflow::canonical_order())
    wf.set_stage(s, [s, &ran] {
      ran.push_back(s);
      return StageReport{};
    });
  DecisionReport report = wf.run();
  EXPECT_TRUE(report.go);
  EXPECT_EQ(ran, DecisionWorkflow::canonical_order());
  EXPECT_EQ(report.entries.size(), 8u);
  EXPECT_NE(report.to_string().find("DECISION: GO"), std::string::npos);
}

TEST(DecisionWorkflow, BlockStopsExecution) {
  DecisionWorkflow wf;
  int later_ran = 0;
  wf.set_stage(Stage::kDeviceBenchmark, [] {
    StageReport r;
    r.verdict = StageVerdict::kBlock;
    r.notes = "model too large for low-end devices";
    return r;
  });
  wf.set_stage(Stage::kResourceForecast, [&] {
    ++later_ran;
    return StageReport{};
  });
  DecisionReport report = wf.run();
  EXPECT_FALSE(report.go);
  EXPECT_EQ(report.blocked_at, "device-benchmark");
  EXPECT_EQ(later_ran, 0);
  EXPECT_NE(report.to_string().find("NO-GO"), std::string::npos);
}

TEST(DecisionWorkflow, UnregisteredStagesSkippedWithNote) {
  DecisionWorkflow wf;
  wf.set_stage(Stage::kDeploymentDecision, [] { return StageReport{}; });
  DecisionReport report = wf.run();
  EXPECT_TRUE(report.go);
  EXPECT_EQ(report.entries.size(), 8u);
  EXPECT_EQ(report.entries[0].report.notes, "stage not instrumented; skipped");
}

TEST(DecisionWorkflow, MeasurementsSurfaceInReport) {
  DecisionWorkflow wf;
  wf.set_stage(Stage::kAvailabilityAnalysis, [] {
    StageReport r;
    r.measurements["available_fraction"] = 0.22;
    return r;
  });
  DecisionReport report = wf.run();
  EXPECT_NE(report.to_string().find("available_fraction"), std::string::npos);
}

TEST(DecisionWorkflow, NullStageRejected) {
  DecisionWorkflow wf;
  EXPECT_THROW(wf.set_stage(Stage::kDeviceBenchmark, nullptr), util::CheckError);
}

// ------------------------------------------------------------ FlintPlatform

TEST(Platform, ComponentsWired) {
  FlintPlatform platform(7);
  EXPECT_EQ(platform.devices().size(), 27u);
  auto report = platform.benchmark_model('A', 1000);
  EXPECT_EQ(report.per_device.size(), 27u);

  device::SessionGeneratorConfig scfg;
  scfg.clients = 150;
  scfg.days = 3;
  auto log = platform.generate_session_log(scfg);
  EXPECT_GT(log.sessions.size(), 100u);

  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  auto trace = platform.build_availability(log, criteria);
  EXPECT_GT(trace.window_count(), 0u);
  EXPECT_LT(trace.window_count(), log.sessions.size());
}

TEST(Platform, ProxyRegistration) {
  FlintPlatform platform(8);
  std::vector<ml::Example> records(120);
  data::ProxyConfig cfg;
  cfg.name = "test-proxy";
  auto entry = platform.generate_proxy(records, cfg, [](std::size_t i) { return i % 12; });
  EXPECT_EQ(entry.stats.client_population, 12u);
  EXPECT_TRUE(platform.data_catalog().latest("test-proxy").has_value());
}

TEST(Platform, CaseStudyEndToEnd) {
  FlintPlatform platform(9);
  util::Rng rng(10);
  auto task = test::small_task(rng, 50);
  auto trace = test::always_available(50, 1e9);
  net::FixedBandwidthModel bw(50.0);
  auto model = task.make_model(rng);
  auto cfg = tiny_async_config(task, *model, trace, platform.devices(), bw);
  cfg.inputs.max_rounds = 12;

  CaseStudyResult result =
      platform.evaluate_case_study(task, cfg, /*trials=*/2, /*centralized_epochs=*/3,
                                   ForecastConfig{});
  EXPECT_GT(result.centralized_metric, 0.0);
  EXPECT_GT(result.fl_metric, 0.0);
  EXPECT_GT(result.projected_training_h, 0.0);
  EXPECT_EQ(result.fl_trials.trials.size(), 2u);
  // Both models stored.
  EXPECT_TRUE(platform.model_store().latest("centralized/ads").has_value());
  EXPECT_TRUE(platform.model_store().latest("fl/ads").has_value());
  // FL typically at or below the centralized baseline (Table 4's shape);
  // allow a small positive margin for noise on this tiny task.
  EXPECT_LT(result.performance_diff_pct, 25.0);
  EXPECT_GT(result.performance_diff_pct, -80.0);
}

}  // namespace
}  // namespace flint::core
