#include "flint/core/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "flint/fl/fedbuff.h"
#include "flint/util/csv.h"
#include "test_helpers.h"

namespace flint::core {
namespace {

namespace fs = std::filesystem;

fl::RunResult sample_run() {
  util::Rng rng(1);
  static auto task = test::small_task(rng, 40);
  static auto catalog = device::DeviceCatalog::standard();
  static net::FixedBandwidthModel bw(50.0);
  static auto trace = test::always_available(40, 1e9);
  static auto model = task.make_model(rng);
  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 8;
  cfg.inputs.eval_every_rounds = 2;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  return fl::run_fedbuff(cfg);
}

TEST(Report, MarkdownContainsAllSections) {
  fl::RunResult run = sample_run();
  ResourceForecast forecast = forecast_resources(run, ForecastConfig{});
  ReportInputs inputs;
  inputs.title = "ads pilot";
  inputs.run = &run;
  inputs.forecast = &forecast;
  inputs.centralized_metric = 0.9;
  inputs.metric_name = "AUPR";
  std::string md = render_report_markdown(inputs);
  EXPECT_NE(md.find("# ads pilot"), std::string::npos);
  EXPECT_NE(md.find("## Model metrics"), std::string::npos);
  EXPECT_NE(md.find("## System metrics"), std::string::npos);
  EXPECT_NE(md.find("## Resource forecast"), std::string::npos);
  EXPECT_NE(md.find("Centralized baseline"), std::string::npos);
  EXPECT_NE(md.find("AUPR"), std::string::npos);
  EXPECT_EQ(md.find("Fairness"), std::string::npos);  // not supplied
}

TEST(Report, OptionalSectionsSkipped) {
  fl::RunResult run = sample_run();
  ReportInputs inputs;
  inputs.run = &run;
  std::string md = render_report_markdown(inputs);
  EXPECT_EQ(md.find("Resource forecast"), std::string::npos);
  EXPECT_EQ(md.find("Centralized baseline"), std::string::npos);
}

TEST(Report, RequiresRun) {
  ReportInputs inputs;
  EXPECT_THROW(render_report_markdown(inputs), util::CheckError);
}

TEST(Report, WriteProducesFilesAndParsableCsv) {
  auto dir = fs::temp_directory_path() / "flint_report_test";
  fs::remove_all(dir);
  fl::RunResult run = sample_run();
  ReportInputs inputs;
  inputs.run = &run;
  std::string path = write_report(dir.string(), inputs);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(dir / "eval_curve.csv"));
  EXPECT_TRUE(fs::exists(dir / "rounds.csv"));

  // rounds.csv parses back with one row per aggregation + header.
  std::ifstream in(dir / "rounds.csv");
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    auto cells = util::parse_csv_line(line);
    EXPECT_EQ(cells.size(), 6u);
    ++rows;
  }
  EXPECT_EQ(rows, run.metrics.rounds().size() + 1);
  fs::remove_all(dir);
}

TEST(Report, EvalCurveCsvMatchesRun) {
  auto dir = fs::temp_directory_path() / "flint_report_curve";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fl::RunResult run = sample_run();
  std::string path = (dir / "curve.csv").string();
  write_eval_curve_csv(path, run);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, run.eval_curve.size());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace flint::core
