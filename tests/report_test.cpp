#include "flint/core/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "flint/fl/fedbuff.h"
#include "flint/util/csv.h"
#include "test_helpers.h"

namespace flint::core {
namespace {

namespace fs = std::filesystem;

fl::RunResult sample_run() {
  util::Rng rng(1);
  static auto task = test::small_task(rng, 40);
  static auto catalog = device::DeviceCatalog::standard();
  static net::FixedBandwidthModel bw(50.0);
  static auto trace = test::always_available(40, 1e9);
  static auto model = task.make_model(rng);
  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 8;
  cfg.inputs.eval_every_rounds = 2;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  return fl::run_fedbuff(cfg);
}

TEST(Report, MarkdownContainsAllSections) {
  fl::RunResult run = sample_run();
  ResourceForecast forecast = forecast_resources(run, ForecastConfig{});
  ReportInputs inputs;
  inputs.title = "ads pilot";
  inputs.run = &run;
  inputs.forecast = &forecast;
  inputs.centralized_metric = 0.9;
  inputs.metric_name = "AUPR";
  std::string md = render_report_markdown(inputs);
  EXPECT_NE(md.find("# ads pilot"), std::string::npos);
  EXPECT_NE(md.find("## Model metrics"), std::string::npos);
  EXPECT_NE(md.find("## System metrics"), std::string::npos);
  EXPECT_NE(md.find("## Resource forecast"), std::string::npos);
  EXPECT_NE(md.find("Centralized baseline"), std::string::npos);
  EXPECT_NE(md.find("AUPR"), std::string::npos);
  EXPECT_EQ(md.find("Fairness"), std::string::npos);  // not supplied
}

TEST(Report, OptionalSectionsSkipped) {
  fl::RunResult run = sample_run();
  ReportInputs inputs;
  inputs.run = &run;
  std::string md = render_report_markdown(inputs);
  EXPECT_EQ(md.find("Resource forecast"), std::string::npos);
  EXPECT_EQ(md.find("Centralized baseline"), std::string::npos);
}

TEST(Report, RequiresRun) {
  ReportInputs inputs;
  EXPECT_THROW(render_report_markdown(inputs), util::CheckError);
}

TEST(Report, WriteProducesFilesAndParsableCsv) {
  auto dir = fs::temp_directory_path() / "flint_report_test";
  fs::remove_all(dir);
  fl::RunResult run = sample_run();
  ReportInputs inputs;
  inputs.run = &run;
  std::string path = write_report(dir.string(), inputs);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(dir / "eval_curve.csv"));
  EXPECT_TRUE(fs::exists(dir / "rounds.csv"));

  // rounds.csv parses back with one row per aggregation + header.
  std::ifstream in(dir / "rounds.csv");
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    auto cells = util::parse_csv_line(line);
    EXPECT_EQ(cells.size(), 6u);
    ++rows;
  }
  EXPECT_EQ(rows, run.metrics.rounds().size() + 1);
  fs::remove_all(dir);
}

TEST(Report, EvalCurveRendersAsBoundedMarkdownTable) {
  // A long run's curve must come out as a real markdown table, downsampled to
  // a bounded number of rows with the final point always present.
  fl::RunResult run;
  for (std::uint64_t r = 1; r <= 100; ++r)
    run.eval_curve.push_back({static_cast<double>(r) * 60.0, r, 0.5 + 0.001 * r, 0.0});
  run.rounds = 100;
  run.final_metric = run.eval_curve.back().metric;
  run.virtual_duration_s = 6000.0;
  ReportInputs inputs;
  inputs.run = &run;
  inputs.metric_name = "AUPR";
  std::string md = render_report_markdown(inputs);

  auto header = md.find("| round | virtual time (h) | AUPR |");
  ASSERT_NE(header, std::string::npos);
  EXPECT_NE(md.find("downsampled"), std::string::npos);
  // Count table body rows between the header separator and the blank line.
  auto sep = md.find("|---|---|---|", header);
  ASSERT_NE(sep, std::string::npos);
  std::size_t rows = 0;
  std::istringstream is(md.substr(md.find('\n', sep) + 1));
  std::string line;
  while (std::getline(is, line) && !line.empty() && line.front() == '|') ++rows;
  EXPECT_LE(rows, 20u);
  EXPECT_GE(rows, 10u);
  // The last eval point survives downsampling.
  EXPECT_NE(md.find("| 100 | "), std::string::npos);
}

TEST(Report, ShortEvalCurveKeepsEveryRow) {
  fl::RunResult run;
  for (std::uint64_t r = 1; r <= 5; ++r)
    run.eval_curve.push_back({static_cast<double>(r) * 60.0, r, 0.6, 0.0});
  run.rounds = 5;
  run.virtual_duration_s = 300.0;
  ReportInputs inputs;
  inputs.run = &run;
  std::string md = render_report_markdown(inputs);
  EXPECT_EQ(md.find("downsampled"), std::string::npos);
  for (const char* row : {"| 1 | ", "| 2 | ", "| 3 | ", "| 4 | ", "| 5 | "})
    EXPECT_NE(md.find(row), std::string::npos) << row;
}

TEST(Report, EvalCurveCsvMatchesRun) {
  auto dir = fs::temp_directory_path() / "flint_report_curve";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fl::RunResult run = sample_run();
  std::string path = (dir / "curve.csv").string();
  write_eval_curve_csv(path, run);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, run.eval_curve.size());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace flint::core
