// Tests for model serialization, session-log persistence, and the §4.1
// attribute-profile coin-flip trace builder.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "flint/device/attribute_profile.h"
#include "flint/device/session_io.h"
#include "flint/ml/model_zoo.h"
#include "flint/ml/serialize.h"
#include "test_helpers.h"

namespace flint {
namespace {

namespace fs = std::filesystem;

// -------------------------------------------------------- ml::serialize

TEST(ModelSerialize, FeedForwardRoundTripPreservesOutputs) {
  util::Rng rng(1);
  ml::FeedForwardConfig cfg;
  cfg.front_end = ml::FrontEnd::kEmbedding;
  cfg.vocab = 30;
  cfg.embed_dim = 6;
  cfg.dense_dim = 4;
  cfg.hidden = {8, 5};
  cfg.heads = 2;
  ml::FeedForwardModel model(cfg);
  model.init(rng);

  auto blob = serialize_model(model);
  auto back = ml::deserialize_model(blob);
  ASSERT_EQ(back->parameter_count(), model.parameter_count());
  EXPECT_EQ(back->get_flat_parameters(), model.get_flat_parameters());
  EXPECT_EQ(back->heads(), 2u);

  std::vector<ml::Example> examples(3);
  for (auto& e : examples) {
    e.dense = {0.1f, -0.2f, 0.3f, 0.4f};
    e.tokens = {1, 5, 7};
  }
  ml::Batch batch = ml::Batch::from_examples(examples, 4);
  EXPECT_TRUE(model.forward(batch) == back->forward(batch));
}

TEST(ModelSerialize, ConvTextRoundTrip) {
  util::Rng rng(2);
  ml::ConvTextConfig cfg;
  cfg.vocab = 40;
  cfg.embed_dim = 6;
  cfg.seq_len = 5;
  cfg.conv_channels = 3;
  cfg.kernel = 2;
  cfg.hidden = {4};
  ml::ConvTextModel model(cfg);
  model.init(rng);
  auto back = ml::deserialize_model(serialize_model(model));
  EXPECT_EQ(back->get_flat_parameters(), model.get_flat_parameters());
}

TEST(ModelSerialize, AllZooModelsRoundTripThroughFiles) {
  auto dir = fs::temp_directory_path() / "flint_model_serialize";
  fs::remove_all(dir);
  fs::create_directories(dir);
  util::Rng rng(3);
  for (const auto& spec : ml::model_zoo()) {
    auto model = ml::build_zoo_model(spec.id, rng);
    std::string path = (dir / (std::string("model_") + spec.id + ".flmd")).string();
    ml::save_model(path, *model);
    EXPECT_EQ(static_cast<std::size_t>(fs::file_size(path)),
              ml::serialized_model_bytes(*model));
    auto back = ml::load_model(path);
    EXPECT_EQ(back->get_flat_parameters(), model->get_flat_parameters()) << spec.id;
  }
  fs::remove_all(dir);
}

TEST(ModelSerialize, SizeTracksSdkBudget) {
  // Model B must serialize under the paper's 1MB SDK budget; Model E must
  // not (it is a first-party-app model).
  util::Rng rng(4);
  auto b = ml::build_zoo_model('B', rng);
  auto e = ml::build_zoo_model('E', rng);
  EXPECT_LT(ml::serialized_model_bytes(*b), 1'000'000u);
  EXPECT_GT(ml::serialized_model_bytes(*e), 1'000'000u);
}

TEST(ModelSerialize, GarbageRejected) {
  std::vector<char> garbage = {'X', 'Y', 'Z', 'W', 9};
  EXPECT_THROW(ml::deserialize_model(garbage), util::CheckError);
  // Truncated weights.
  util::Rng rng(5);
  auto model = ml::build_zoo_model('A', rng);
  auto blob = serialize_model(*model);
  blob.resize(blob.size() - 16);
  EXPECT_THROW(ml::deserialize_model(blob), util::CheckError);
}

// ------------------------------------------------------- device::session_io

TEST(SessionIo, RoundTripPreservesSessions) {
  auto dir = fs::temp_directory_path() / "flint_session_io";
  fs::remove_all(dir);
  fs::create_directories(dir);
  util::Rng rng(6);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 100;
  cfg.days = 3;
  auto log = device::generate_sessions(cfg, catalog, rng);

  std::string path = (dir / "sessions.csv").string();
  device::write_session_log_csv(path, log);
  auto back = device::read_session_log_csv(path);
  ASSERT_EQ(back.sessions.size(), log.sessions.size());
  for (std::size_t i = 0; i < log.sessions.size(); ++i) {
    EXPECT_EQ(back.sessions[i].client_id, log.sessions[i].client_id);
    EXPECT_EQ(back.sessions[i].device_index, log.sessions[i].device_index);
    EXPECT_NEAR(back.sessions[i].start, log.sessions[i].start, 1e-6);
    EXPECT_NEAR(back.sessions[i].end, log.sessions[i].end, 1e-6);
    EXPECT_EQ(back.sessions[i].wifi, log.sessions[i].wifi);
    EXPECT_NEAR(back.sessions[i].battery_pct, log.sessions[i].battery_pct, 1e-6);
  }
  // Criteria analysis must agree on both copies.
  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  EXPECT_NEAR(device::criteria_pass_fraction(log, criteria, catalog),
              device::criteria_pass_fraction(back, criteria, catalog), 1e-9);
  fs::remove_all(dir);
}

TEST(SessionIo, BinaryChunkRoundTripIsBitExact) {
  // The spill format under the streaming generator's k-way merge: unlike the
  // CSV path there is no decimal formatting, so every field must come back
  // bit-for-bit.
  auto dir = fs::temp_directory_path() / "flint_session_chunk";
  fs::remove_all(dir);
  fs::create_directories(dir);
  util::Rng rng(61);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 50;
  cfg.days = 2;
  auto log = device::generate_sessions(cfg, catalog, rng);

  std::string path = (dir / "chunk.bin").string();
  {
    device::SessionChunkWriter writer(path);
    for (const auto& s : log.sessions) writer.add(s);
    writer.finish();
  }
  device::SessionChunkReader reader(path, /*buffer_sessions=*/7);  // odd size:
  EXPECT_EQ(reader.count(), log.sessions.size());  // forces partial refills
  std::size_t i = 0;
  while (auto s = reader.next()) {
    ASSERT_LT(i, log.sessions.size());
    EXPECT_EQ(s->client_id, log.sessions[i].client_id);
    EXPECT_EQ(s->device_index, log.sessions[i].device_index);
    EXPECT_EQ(s->start, log.sessions[i].start);
    EXPECT_EQ(s->end, log.sessions[i].end);
    EXPECT_EQ(s->wifi, log.sessions[i].wifi);
    EXPECT_EQ(s->battery_pct, log.sessions[i].battery_pct);
    EXPECT_EQ(s->foreground, log.sessions[i].foreground);
    ++i;
  }
  EXPECT_EQ(i, log.sessions.size());
  EXPECT_FALSE(reader.next().has_value());
  fs::remove_all(dir);
}

TEST(SessionIo, BinaryChunkRejectsBadHeaderAndTruncation) {
  auto dir = fs::temp_directory_path() / "flint_session_chunk_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string garbage = (dir / "garbage.bin").string();
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a session chunk";
  }
  EXPECT_THROW(device::SessionChunkReader(garbage, 16), util::CheckError);
  EXPECT_THROW(device::SessionChunkReader((dir / "missing.bin").string(), 16),
               util::CheckError);

  // A valid header whose record payload was cut short must be caught by the
  // reader's byte accounting, not returned as silently-zeroed sessions.
  std::string truncated = (dir / "truncated.bin").string();
  {
    device::SessionChunkWriter writer(truncated);
    device::Session s;
    s.client_id = 1;
    s.start = 1.0;
    s.end = 2.0;
    for (int i = 0; i < 4; ++i) writer.add(s);
    writer.finish();
  }
  fs::resize_file(truncated, fs::file_size(truncated) - 10);
  device::SessionChunkReader reader(truncated, 16);
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      util::CheckError);
  fs::remove_all(dir);
}

TEST(SessionIo, RejectsBadFiles) {
  auto dir = fs::temp_directory_path() / "flint_session_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string path = (dir / "bad.csv").string();
  {
    std::ofstream out(path);
    out << "not,a,session,log\n";
  }
  EXPECT_THROW(device::read_session_log_csv(path), util::CheckError);
  EXPECT_THROW(device::read_session_log_csv((dir / "missing.csv").string()),
               util::CheckError);
  fs::remove_all(dir);
}

// --------------------------------------------------- device::AttributeProfile

TEST(AttributeProfile, EstimatesMarginalsFromLog) {
  util::Rng rng(7);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 1200;
  cfg.days = 7;
  cfg.wifi_probability = 0.70;
  cfg.high_battery_probability = 0.34;
  auto log = device::generate_sessions(cfg, catalog, rng);
  auto profile = device::AttributeProfile::estimate(log);
  // The generator's attributes are time-independent, so every hour's
  // estimate should hover near the marginals.
  double wifi_sum = 0.0, battery_sum = 0.0;
  for (int h = 0; h < 24; ++h) {
    wifi_sum += profile.wifi_probability_at(h * 3600.0);
    battery_sum += profile.battery_probability_at(h * 3600.0);
  }
  EXPECT_NEAR(wifi_sum / 24.0, 0.70, 0.06);
  EXPECT_NEAR(battery_sum / 24.0, 0.34, 0.06);
  EXPECT_NEAR(profile.eligibility_probability_at(0.0),
              profile.wifi_probability_at(0.0) * profile.battery_probability_at(0.0), 1e-12);
}

TEST(AttributeProfile, CoinflipTraceMatchesDirectFiltering) {
  // The §4.1 weighted coin-flip applied to attribute-free sessions should
  // keep approximately the same fraction as direct attribute filtering.
  util::Rng rng(8);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 1500;
  cfg.days = 7;
  auto log = device::generate_sessions(cfg, catalog, rng);
  auto profile = device::AttributeProfile::estimate(log);

  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  criteria.min_battery_pct = 80.0;
  auto direct = device::build_availability(log, criteria, catalog);
  util::Rng flip_rng(9);
  auto flipped =
      device::build_availability_by_coinflip(log, profile, criteria, catalog, flip_rng);

  double direct_frac =
      static_cast<double>(direct.window_count()) / static_cast<double>(log.sessions.size());
  double flipped_frac =
      static_cast<double>(flipped.window_count()) / static_cast<double>(log.sessions.size());
  EXPECT_NEAR(flipped_frac, direct_frac, 0.03);
}

TEST(AttributeProfile, HardCriteriaStillApply) {
  util::Rng rng(10);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 300;
  cfg.days = 2;
  auto log = device::generate_sessions(cfg, catalog, rng);
  auto profile = device::AttributeProfile::estimate(log);
  device::AvailabilityCriteria criteria;
  criteria.min_os_release = 999912;  // impossible: nothing passes
  util::Rng flip_rng(11);
  auto trace =
      device::build_availability_by_coinflip(log, profile, criteria, catalog, flip_rng);
  EXPECT_EQ(trace.window_count(), 0u);
}

}  // namespace
}  // namespace flint
