// Kernel-equivalence suite for flint::ml::kernels (DESIGN.md §16): every
// SIMD path compiled into this binary must agree with the scalar reference —
// bit-for-bit for the elementwise/gather/matmul kernels, within 1 ULP for
// the double-reduction kernels — plus dispatch behaviour and the fused
// clip+noise kernel against an inline two-pass reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "flint/ml/kernels/kernels.h"
#include "flint/util/check.h"
#include "flint/util/rng.h"

namespace flint {
namespace {

namespace k = ml::kernels;

std::vector<k::KernelPath> simd_paths() {
  std::vector<k::KernelPath> paths;
  for (k::KernelPath p : {k::KernelPath::kAvx2, k::KernelPath::kNeon})
    if (k::path_supported(p)) paths.push_back(p);
  return paths;
}

std::vector<float> random_floats(std::size_t n, util::Rng& rng, double stddev = 1.0) {
  std::vector<float> v(n);
  for (float& f : v) f = static_cast<float>(rng.normal(0.0, stddev));
  return v;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool within_one_ulp(float a, float b) {
  return a == b || b == std::nextafter(a, b);
}

// Sizes straddle the vector width: remainders of every length get exercised.
constexpr std::size_t kSizes[] = {0, 1, 3, 7, 8, 15, 64, 257, 1000};

TEST(KernelEquivalence, ElementwiseBitIdenticalAcrossPaths) {
  const auto& scalar = k::table_for(k::KernelPath::kScalar);
  for (k::KernelPath path : simd_paths()) {
    const auto& simd = k::table_for(path);
    for (std::size_t n : kSizes) {
      util::Rng rng(1000 + n);
      const std::vector<float> x = random_floats(n, rng);
      const std::vector<float> y0 = random_floats(n, rng);
      const std::vector<float> v0 = random_floats(n, rng, 0.1);

      auto check = [&](const char* name, auto&& run) {
        std::vector<float> a = y0, b = y0;
        std::vector<float> va = v0, vb = v0;
        run(scalar, a, va);
        run(simd, b, vb);
        EXPECT_TRUE(bit_equal(a, b))
            << name << " differs from scalar on " << k::path_name(path) << " at n=" << n;
        EXPECT_TRUE(bit_equal(va, vb))
            << name << " aux state differs on " << k::path_name(path) << " at n=" << n;
      };

      check("add", [&](const k::KernelTable& t, auto& y, auto&) {
        t.add(y.data(), x.data(), n);
      });
      check("sub", [&](const k::KernelTable& t, auto& y, auto&) {
        t.sub(y.data(), x.data(), n);
      });
      check("scale", [&](const k::KernelTable& t, auto& y, auto&) {
        t.scale(y.data(), 0.637f, n);
      });
      check("axpy", [&](const k::KernelTable& t, auto& y, auto&) {
        t.axpy(y.data(), x.data(), -1.75f, n);
      });
      check("scale_add", [&](const k::KernelTable& t, auto& y, auto&) {
        t.scale_add(y.data(), 0.923f, x.data(), n);
      });
      check("sgd_step", [&](const k::KernelTable& t, auto& y, auto&) {
        t.sgd_step(y.data(), x.data(), 0.01f, 1e-4f, n);
      });
      check("sgd_momentum_step", [&](const k::KernelTable& t, auto& y, auto& v) {
        t.sgd_momentum_step(y.data(), x.data(), v.data(), 0.01f, 0.9f, 1e-4f, n);
      });
      check("server_momentum_step", [&](const k::KernelTable& t, auto& y, auto& v) {
        t.server_momentum_step(y.data(), v.data(), x.data(), 0.9f, 0.5f, n);
      });
    }
  }
}

TEST(KernelEquivalence, AccumAndReduceKernels) {
  const auto& scalar = k::table_for(k::KernelPath::kScalar);
  for (k::KernelPath path : simd_paths()) {
    const auto& simd = k::table_for(path);
    for (std::size_t n : kSizes) {
      util::Rng rng(2000 + n);
      const std::vector<float> x = random_floats(n, rng);
      const std::vector<double> sum0 = [&] {
        std::vector<double> s(n);
        for (double& d : s) d = rng.normal(0.0, 10.0);
        return s;
      }();

      // weighted_accum: per-element double FMA-free update, bit-identical.
      std::vector<double> sa = sum0, sb = sum0;
      scalar.weighted_accum(sa.data(), x.data(), 2.5, n);
      simd.weighted_accum(sb.data(), x.data(), 2.5, n);
      EXPECT_EQ(0, std::memcmp(sa.data(), sb.data(), n * sizeof(double)))
          << "weighted_accum differs at n=" << n;

      // mean_from_sums: elementwise, bit-identical.
      std::vector<float> ma(n), mb(n);
      scalar.mean_from_sums(ma.data(), sum0.data(), 1.0 / 3.0, n);
      simd.mean_from_sums(mb.data(), sum0.data(), 1.0 / 3.0, n);
      EXPECT_TRUE(bit_equal(ma, mb)) << "mean_from_sums differs at n=" << n;

      // max_abs: order-independent, exact.
      EXPECT_EQ(scalar.max_abs(x.data(), n), simd.max_abs(x.data(), n))
          << "max_abs differs at n=" << n;

      // sum_squares: multi-accumulator in SIMD paths — relative agreement
      // at the ~n·eps_double level, not bit equality.
      double qa = scalar.sum_squares(x.data(), n, 1.0);
      double qb = simd.sum_squares(x.data(), n, 1.0);
      double tol = static_cast<double>(n + 4) * 4.0 * std::numeric_limits<double>::epsilon();
      EXPECT_NEAR(qa, qb, std::abs(qa) * tol) << "sum_squares drifts at n=" << n;
    }
  }
}

TEST(KernelEquivalence, MatmulFamily) {
  const auto& scalar = k::table_for(k::KernelPath::kScalar);
  struct Shape {
    std::size_t m, kk, n;
  };
  const Shape shapes[] = {{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {17, 33, 9}, {32, 64, 16}};
  for (k::KernelPath path : simd_paths()) {
    const auto& simd = k::table_for(path);
    for (const Shape& s : shapes) {
      util::Rng rng(3000 + s.m * 100 + s.kk * 10 + s.n);
      std::vector<float> a = random_floats(s.m * s.kk, rng);
      std::vector<float> b = random_floats(s.kk * s.n, rng);
      // Plant exact zeros so the a==0 skip (signed-zero preservation) runs.
      for (std::size_t i = 0; i < a.size(); i += 7) a[i] = 0.0f;

      std::vector<float> oa(s.m * s.n, 0.0f), ob(s.m * s.n, 0.0f);
      scalar.matmul(a.data(), b.data(), oa.data(), s.m, s.kk, s.n);
      simd.matmul(a.data(), b.data(), ob.data(), s.m, s.kk, s.n);
      EXPECT_TRUE(bit_equal(oa, ob))
          << "matmul differs on " << k::path_name(path) << " at " << s.m << "x" << s.kk << "x"
          << s.n;

      // transposed_matmul: a is [k, m].
      std::vector<float> at = random_floats(s.kk * s.m, rng);
      std::vector<float> ta(s.m * s.n, 0.0f), tb(s.m * s.n, 0.0f);
      scalar.transposed_matmul(at.data(), b.data(), ta.data(), s.kk, s.m, s.n);
      simd.transposed_matmul(at.data(), b.data(), tb.data(), s.kk, s.m, s.n);
      EXPECT_TRUE(bit_equal(ta, tb)) << "transposed_matmul differs on " << k::path_name(path);

      // matmul_transposed: b is [n, k]; dot products agree within 1 ULP.
      std::vector<float> bt = random_floats(s.n * s.kk, rng);
      std::vector<float> da(s.m * s.n, 0.0f), db(s.m * s.n, 0.0f);
      scalar.matmul_transposed(a.data(), bt.data(), da.data(), s.m, s.kk, s.n);
      simd.matmul_transposed(a.data(), bt.data(), db.data(), s.m, s.kk, s.n);
      for (std::size_t i = 0; i < da.size(); ++i)
        EXPECT_TRUE(within_one_ulp(da[i], db[i]))
            << "matmul_transposed element " << i << " beyond 1 ULP: " << da[i] << " vs "
            << db[i];
    }
  }
}

TEST(KernelEquivalence, GatherScatterExact) {
  constexpr std::size_t kVocab = 50, kDim = 33;
  const auto& scalar = k::table_for(k::KernelPath::kScalar);
  util::Rng rng(77);
  const std::vector<float> table0 = random_floats(kVocab * kDim, rng);
  const std::vector<float> grad = random_floats(kDim, rng);
  // Out-of-range ids exercise the clamp; duplicates exercise accumulation.
  const std::vector<std::int32_t> tokens = {0, 5, 5, 49, -3, 1000, 17};

  for (k::KernelPath path : simd_paths()) {
    const auto& simd = k::table_for(path);
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, tokens.size()}) {
      std::vector<float> oa(kDim, 0.0f), ob(kDim, 0.0f);
      scalar.gather_mean_rows(table0.data(), kDim, tokens.data(), count, kVocab, oa.data());
      simd.gather_mean_rows(table0.data(), kDim, tokens.data(), count, kVocab, ob.data());
      EXPECT_TRUE(bit_equal(oa, ob)) << "gather_mean_rows differs at count=" << count;

      std::vector<float> ta = table0, tb = table0;
      scalar.scatter_add_rows(ta.data(), kDim, tokens.data(), count, kVocab, grad.data(),
                              0.25f);
      simd.scatter_add_rows(tb.data(), kDim, tokens.data(), count, kVocab, grad.data(), 0.25f);
      EXPECT_TRUE(bit_equal(ta, tb)) << "scatter_add_rows differs at count=" << count;
    }
  }
}

// Chaining sum_squares calls on the scalar path must reproduce one long
// accumulation exactly — optimizer::clip_gradients sweeps parameter tensors
// in sequence and relies on this to match the old single-loop numerics.
TEST(KernelEquivalence, ScalarSumSquaresChainsExactly) {
  const auto& scalar = k::table_for(k::KernelPath::kScalar);
  util::Rng rng(5);
  const std::vector<float> x = random_floats(1000, rng);
  double whole = scalar.sum_squares(x.data(), x.size(), 0.0);
  double chained = scalar.sum_squares(x.data(), 400, 0.0);
  chained = scalar.sum_squares(x.data() + 400, 600, chained);
  EXPECT_EQ(whole, chained);
}

class KernelDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_spec_ = k::requested_spec(); }
  void TearDown() override { k::set_path(saved_spec_); }
  std::string saved_spec_;
};

TEST_F(KernelDispatchTest, SetPathPinsAndReports) {
  k::set_path("scalar");
  EXPECT_EQ(k::active_path(), k::KernelPath::kScalar);
  EXPECT_EQ(k::requested_spec(), "scalar");
  EXPECT_EQ(&k::active(), &k::table_for(k::KernelPath::kScalar));

  k::set_path("auto");
  EXPECT_EQ(k::requested_spec(), "auto");
  EXPECT_TRUE(k::path_supported(k::active_path()));
}

TEST_F(KernelDispatchTest, UnknownSpecRejected) {
  EXPECT_THROW(k::set_path("avx512"), util::CheckError);
  EXPECT_THROW(k::set_path(""), util::CheckError);
}

TEST_F(KernelDispatchTest, UnsupportedPathRejected) {
  // At most one of avx2/neon exists in any one build; the other must throw.
  EXPECT_TRUE(!k::path_supported(k::KernelPath::kAvx2) ||
              !k::path_supported(k::KernelPath::kNeon));
  for (k::KernelPath p : {k::KernelPath::kAvx2, k::KernelPath::kNeon}) {
    if (!k::path_supported(p)) {
      EXPECT_THROW(k::table_for(p), util::CheckError);
      EXPECT_THROW(k::set_path(k::path_name(p)), util::CheckError);
    }
  }
  EXPECT_TRUE(k::path_supported(k::KernelPath::kScalar));
}

// The fused clip+noise kernel must be bit-invisible vs the classic two-pass
// clip-then-add-noise it replaced, within a kernel path.
TEST(ClipNoise, MatchesTwoPassReferenceBitForBit) {
  for (double stddev : {0.0, 0.75}) {
    for (double clip_norm : {0.5, 1e9}) {  // clipped and unclipped regimes
      util::Rng rng_fused(42), rng_ref(42);
      util::Rng data_rng(9);
      std::vector<float> fused = random_floats(513, data_rng);
      std::vector<float> ref = fused;

      double norm_fused =
          k::clip_noise(fused.data(), fused.size(), clip_norm, stddev, rng_fused);

      // Inline two-pass reference on the same (active) kernel path.
      const auto& t = k::active();
      double norm_ref = std::sqrt(t.sum_squares(ref.data(), ref.size(), 0.0));
      float scale = norm_ref > clip_norm ? static_cast<float>(clip_norm / norm_ref) : 1.0f;
      if (stddev == 0.0) {
        if (scale != 1.0f) t.scale(ref.data(), scale, ref.size());
      } else {
        std::vector<float> noise(ref.size());
        for (float& v : noise) v = static_cast<float>(rng_ref.normal(0.0, stddev));
        t.scale_add(ref.data(), scale, noise.data(), ref.size());
      }

      EXPECT_EQ(norm_fused, norm_ref);
      EXPECT_TRUE(bit_equal(fused, ref))
          << "clip_noise diverges from two-pass at stddev=" << stddev
          << " clip_norm=" << clip_norm;
      // Both rngs must have consumed the same draws.
      EXPECT_EQ(rng_fused.normal(), rng_ref.normal());
    }
  }
}

}  // namespace
}  // namespace flint
