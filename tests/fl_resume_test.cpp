// Crash-safe checkpoint/resume (DESIGN.md §12): a run restored from a
// checkpoint must finish bit-identically to an uninterrupted run — model
// parameters, eval curve, system metrics, attribution — at any thread count.
//
// The in-process trick: a run capped at max_rounds=N leaves behind exactly
// the checkpoint an uninterrupted run writes at round N's cadence point (the
// done flag is never serialized), so "crash at round N" is simulated by a
// short run plus a resumed run, no process kill needed. The real SIGKILL
// path is covered by scripts/crash_resume_test.sh.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "flint/store/checkpoint.h"
#include "flint/util/check.h"
#include "run_identical.h"
#include "test_helpers.h"

namespace flint::fl {
namespace {

std::string fresh_dir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("fl_resume_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct Options {
  std::size_t threads = 1;
  std::uint64_t max_rounds = 4;
  std::uint64_t seed = 9;
  bool dp = false;
  bool compression = false;
  bool interruption_prone_trace = false;
};

/// Half the clients always-on, half flickering through windows shorter than
/// a task (interruption-prone), so checkpoints carry in-flight tasks that
/// are fated to be cut off by their availability window.
device::AvailabilityTrace mixed_trace(std::size_t clients, double horizon_s) {
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < clients; ++c) {
    if (c % 2 == 0) {
      windows.push_back({c, 0, 0.0, horizon_s});
    } else {
      for (double t = 0.0; t < 100.0; t += 5.0) windows.push_back({c, 0, t, t + 0.2});
      windows.push_back({c, 0, 100.0, horizon_s});
    }
  }
  return device::AvailabilityTrace(std::move(windows));
}

class Harness {
 public:
  Harness() {
    util::Rng rng(77);
    task_ = test::small_task(rng, /*clients=*/40);
  }

  RunResult run_avg(const Options& o, store::CheckpointStore* store,
                    store::CheckpointStore* resume_from) {
    util::Rng model_rng(5);
    auto model = task_.make_model(model_rng);
    auto trace = o.interruption_prone_trace ? mixed_trace(40, 1e7)
                                            : test::always_available(40, 1e7);
    auto catalog = device::DeviceCatalog::standard();
    net::FixedBandwidthModel bw(10.0);
    SyncConfig cfg;
    test::wire_inputs(cfg.inputs, task_, *model, trace, catalog, bw);
    apply_options(cfg.inputs, o, store, resume_from);
    cfg.cohort_size = 8;
    return run_fedavg(cfg);
  }

  RunResult run_buff(const Options& o, store::CheckpointStore* store,
                     store::CheckpointStore* resume_from) {
    util::Rng model_rng(5);
    auto model = task_.make_model(model_rng);
    auto trace = o.interruption_prone_trace ? mixed_trace(40, 1e7)
                                            : test::always_available(40, 1e7);
    auto catalog = device::DeviceCatalog::standard();
    net::FixedBandwidthModel bw(10.0);
    AsyncConfig cfg;
    test::wire_inputs(cfg.inputs, task_, *model, trace, catalog, bw);
    apply_options(cfg.inputs, o, store, resume_from);
    cfg.buffer_size = 4;
    cfg.max_concurrency = 12;
    cfg.max_staleness = 50;
    return run_fedbuff(cfg);
  }

 private:
  static void apply_options(RunInputs& inputs, const Options& o,
                            store::CheckpointStore* store,
                            store::CheckpointStore* resume_from) {
    inputs.threads = o.threads;
    inputs.max_rounds = o.max_rounds;
    inputs.eval_every_rounds = 1;
    inputs.seed = o.seed;
    inputs.leader.checkpoint_every_rounds = 2;
    inputs.leader.checkpoint_store = store;
    inputs.resume_from = resume_from;
    if (o.dp) {
      privacy::DpConfig dp;
      dp.clip_norm = 1.0;
      dp.noise_multiplier = 0.4;
      inputs.dp = dp;
    }
    if (o.compression) {
      compress::CompressionConfig c;
      c.kind = compress::CompressionKind::kTopK;
      c.top_k_fraction = 0.25;
      inputs.compression = c;
    }
  }

  data::FederatedTask task_;
};

// "Crash" at `crash_rounds`, resume, finish at `full_rounds`; the result must
// be bit-identical to an uninterrupted `full_rounds` run at every thread
// count. `expected_resume_round` is the newest cadence point <= crash_rounds.
void check_resume(bool fedbuff, Options base, std::uint64_t crash_rounds,
                  std::uint64_t full_rounds, std::uint64_t expected_resume_round,
                  const char* label) {
  SCOPED_TRACE(label);
  Harness h;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    auto tag = std::string(label) + "-t" + std::to_string(threads);
    store::CheckpointStore ref_store(fresh_dir(tag + "-ref"));
    store::CheckpointStore crash_store(fresh_dir(tag + "-crash"));

    Options o = base;
    o.threads = threads;
    o.max_rounds = full_rounds;
    RunResult reference =
        fedbuff ? h.run_buff(o, &ref_store, nullptr) : h.run_avg(o, &ref_store, nullptr);
    ASSERT_EQ(reference.rounds, full_rounds);
    EXPECT_EQ(reference.resume_count, 0u);

    o.max_rounds = crash_rounds;
    RunResult crashed =
        fedbuff ? h.run_buff(o, &crash_store, nullptr) : h.run_avg(o, &crash_store, nullptr);
    ASSERT_EQ(crashed.rounds, crash_rounds);

    o.max_rounds = full_rounds;
    RunResult resumed = fedbuff ? h.run_buff(o, &crash_store, &crash_store)
                                : h.run_avg(o, &crash_store, &crash_store);
    EXPECT_EQ(resumed.resumed_from_round, expected_resume_round);
    EXPECT_EQ(resumed.resume_count, 1u);
    test::expect_identical_runs(reference, resumed, tag.c_str());
  }
}

TEST(CrashResume, FedAvgResumeAtCadenceBoundaryBitIdentical) {
  check_resume(/*fedbuff=*/false, {}, /*crash_rounds=*/2, /*full_rounds=*/4,
               /*expected_resume_round=*/2, "fedavg-boundary");
}

TEST(CrashResume, FedAvgResumeAtNonBoundaryRoundBitIdentical) {
  // Crash at round 3 with cadence 2: the newest checkpoint is round 2, so the
  // resumed run replays round 3 and must still match.
  check_resume(/*fedbuff=*/false, {}, /*crash_rounds=*/3, /*full_rounds=*/4,
               /*expected_resume_round=*/2, "fedavg-nonboundary");
}

TEST(CrashResume, FedBuffResumeAtCadenceBoundaryBitIdentical) {
  check_resume(/*fedbuff=*/true, {}, /*crash_rounds=*/2, /*full_rounds=*/5,
               /*expected_resume_round=*/2, "fedbuff-boundary");
}

TEST(CrashResume, FedBuffResumeAtNonBoundaryRoundBitIdentical) {
  check_resume(/*fedbuff=*/true, {}, /*crash_rounds=*/3, /*full_rounds=*/5,
               /*expected_resume_round=*/2, "fedbuff-nonboundary");
}

TEST(CrashResume, FedBuffResumeWithInterruptedInFlightTasks) {
  // The checkpoint must carry in-flight tasks that are fated to be window-cut
  // (interrupted), and the resumed run must replay their fates exactly.
  Options o;
  o.interruption_prone_trace = true;
  {
    // Probe: the trace must actually force interruptions, or this test
    // silently degenerates into FedBuffResumeAtCadenceBoundaryBitIdentical.
    Harness h;
    store::CheckpointStore probe_store(fresh_dir("fedbuff-interrupted-probe"));
    RunResult probe = h.run_buff(o, &probe_store, nullptr);
    ASSERT_GT(probe.metrics.tasks_interrupted(), 0u);
  }
  check_resume(/*fedbuff=*/true, o, /*crash_rounds=*/2, /*full_rounds=*/4,
               /*expected_resume_round=*/2, "fedbuff-interrupted");
}

TEST(CrashResume, DpAndCompressionVariantResumesBitIdentically) {
  Options o;
  o.dp = true;
  o.compression = true;
  check_resume(/*fedbuff=*/true, o, /*crash_rounds=*/2, /*full_rounds=*/4,
               /*expected_resume_round=*/2, "fedbuff-dp-compression");
}

TEST(CrashResume, EmptyStoreMeansFreshRun) {
  Harness h;
  store::CheckpointStore ref_store(fresh_dir("fresh-ref"));
  store::CheckpointStore empty_store(fresh_dir("fresh-empty"));
  Options o;
  RunResult reference = h.run_buff(o, &ref_store, nullptr);
  RunResult fresh = h.run_buff(o, &empty_store, &empty_store);
  EXPECT_EQ(fresh.resumed_from_round, 0u);
  EXPECT_EQ(fresh.resume_count, 0u);
  test::expect_identical_runs(reference, fresh, "fresh");
}

TEST(CrashResume, SeedMismatchRefusesToSpliceLineages) {
  Harness h;
  store::CheckpointStore store(fresh_dir("seed-mismatch"));
  Options o;
  o.max_rounds = 2;
  h.run_buff(o, &store, nullptr);
  o.seed = 10;
  o.max_rounds = 4;
  EXPECT_THROW(h.run_buff(o, &store, &store), util::CheckError);
}

TEST(CrashResume, AlgorithmMismatchRefusesCheckpoint) {
  Harness h;
  store::CheckpointStore store(fresh_dir("algo-mismatch"));
  Options o;
  o.max_rounds = 2;
  h.run_buff(o, &store, nullptr);
  o.max_rounds = 4;
  EXPECT_THROW(h.run_avg(o, &store, &store), util::CheckError);
}

}  // namespace
}  // namespace flint::fl
