// Tests for the network bandwidth models and the fairness analysis tool.
#include <gtest/gtest.h>

#include <memory>

#include "flint/core/fairness.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/device/session_generator.h"
#include "flint/fl/fedbuff.h"
#include "flint/fl/rpc_runtime.h"
#include "flint/net/bandwidth_model.h"
#include "flint/util/stats.h"
#include "test_helpers.h"

namespace flint {
namespace {

// ------------------------------------------------------------- net

TEST(FixedBandwidth, ReturnsConstant) {
  net::FixedBandwidthModel model(12.5);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(model.sample_mbps(rng), 12.5);
  EXPECT_THROW(net::FixedBandwidthModel(0.0), util::CheckError);
}

TEST(PufferLikeBandwidth, SamplesWithinClampAndSpread) {
  net::PufferLikeBandwidthModel model;
  util::Rng rng(2);
  util::RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    double v = model.sample_mbps(rng);
    ASSERT_GE(v, 0.2);
    ASSERT_LE(v, 400.0);
    s.add(v);
  }
  // Median edge bandwidth in the tens of Mbps with a wide spread, like the
  // Puffer population.
  EXPECT_GT(s.mean(), 5.0);
  EXPECT_LT(s.mean(), 60.0);
  EXPECT_GT(s.max() / s.min(), 50.0);
}

TEST(PufferLikeBandwidth, MixtureWeightsRespected) {
  // A 100%-congested mixture should produce much lower bandwidth than the
  // default three-component mix.
  net::PufferLikeBandwidthModel congested({{1.0, std::log(1.5), 0.8}});
  net::PufferLikeBandwidthModel standard;
  util::Rng rng_a(3), rng_b(3);
  double sum_congested = 0.0, sum_standard = 0.0;
  for (int i = 0; i < 5000; ++i) {
    sum_congested += congested.sample_mbps(rng_a);
    sum_standard += standard.sample_mbps(rng_b);
  }
  EXPECT_LT(sum_congested, sum_standard * 0.5);
}

TEST(TransferSeconds, LinearInBytesInverseInRate) {
  EXPECT_DOUBLE_EQ(net::transfer_seconds(1'000'000, 8.0), 1.0);  // 1MB at 1MB/s
  EXPECT_DOUBLE_EQ(net::transfer_seconds(2'000'000, 8.0), 2.0);
  EXPECT_DOUBLE_EQ(net::transfer_seconds(1'000'000, 16.0), 0.5);
  EXPECT_THROW(net::transfer_seconds(1, 0.0), util::CheckError);
}

// ------------------------------------------------------------ fairness

TEST(Fairness, TierClassification) {
  device::DeviceProfile fast;
  fast.speed_multiplier = 0.4;
  device::DeviceProfile mid;
  mid.speed_multiplier = 1.0;
  device::DeviceProfile slow;
  slow.speed_multiplier = 2.5;
  EXPECT_EQ(core::tier_of(fast), core::DeviceTier::kHighEnd);
  EXPECT_EQ(core::tier_of(mid), core::DeviceTier::kMidRange);
  EXPECT_EQ(core::tier_of(slow), core::DeviceTier::kLowEnd);
  EXPECT_STREQ(core::tier_name(core::DeviceTier::kLowEnd), "low-end");
}

TEST(Fairness, ReportCoversAllTiersWithData) {
  util::Rng rng(4);
  auto task = test::small_task(rng, 120);
  auto catalog = device::DeviceCatalog::standard();
  // Assign devices round-robin across the whole catalog so every tier has
  // clients.
  std::vector<std::size_t> client_device(120);
  for (std::size_t c = 0; c < 120; ++c) client_device[c] = c % catalog.size();
  auto model = task.make_model(rng);

  core::FairnessReport report =
      core::evaluate_fairness(*model, task, client_device, catalog);
  EXPECT_FALSE(report.tiers.empty());
  std::size_t clients = 0, examples = 0;
  for (const auto& t : report.tiers) {
    clients += t.clients;
    examples += t.examples;
    EXPECT_GE(t.metric, 0.0);
    EXPECT_LE(t.metric, 1.0);
  }
  EXPECT_EQ(clients, 120u);
  EXPECT_GT(examples, 0u);
  EXPECT_GE(report.metric_gap, 0.0);
  EXPECT_NE(report.to_string().find("overall="), std::string::npos);
}

TEST(Fairness, GapIsBestMinusWorst) {
  util::Rng rng(5);
  auto task = test::small_task(rng, 60);
  auto catalog = device::DeviceCatalog::standard();
  std::vector<std::size_t> client_device(60);
  for (std::size_t c = 0; c < 60; ++c) client_device[c] = c % catalog.size();
  auto model = task.make_model(rng);
  auto report = core::evaluate_fairness(*model, task, client_device, catalog);
  double best = 0.0, worst = 1e18;
  for (const auto& t : report.tiers) {
    best = std::max(best, t.metric);
    worst = std::min(worst, t.metric);
  }
  EXPECT_NEAR(report.metric_gap, best - worst, 1e-12);
  EXPECT_TRUE(report.fair_within(report.metric_gap + 1e-9));
  EXPECT_FALSE(report.metric_gap > 0.0 && report.fair_within(report.metric_gap / 2.0));
}

TEST(Fairness, UnmappedClientsSkipped) {
  util::Rng rng(6);
  auto task = test::small_task(rng, 50);
  auto catalog = device::DeviceCatalog::standard();
  std::vector<std::size_t> client_device(10, 0);  // only first 10 mapped
  auto model = task.make_model(rng);
  auto report = core::evaluate_fairness(*model, task, client_device, catalog);
  std::size_t clients = 0;
  for (const auto& t : report.tiers) clients += t.clients;
  EXPECT_EQ(clients, 10u);
}

TEST(Fairness, RejectsBadHoldout) {
  util::Rng rng(7);
  auto task = test::small_task(rng, 10);
  auto catalog = device::DeviceCatalog::standard();
  std::vector<std::size_t> client_device(10, 0);
  auto model = task.make_model(rng);
  EXPECT_THROW(core::evaluate_fairness(*model, task, client_device, catalog, 0.0),
               util::CheckError);
  EXPECT_THROW(core::evaluate_fairness(*model, task, client_device, catalog, 1.5),
               util::CheckError);
}

// ------------------------------------------- bandwidth x rpc interplay

// The bandwidth model shapes simulated comm delays on the leader side of the
// simulation; the rpc transport only decides *where* client SGD runs. The two
// must compose without interfering: a run on the loopback rpc transport must
// reproduce the in-process run's bandwidth-driven timing (virtual durations,
// task counts) and its trained parameters bit-for-bit (DESIGN.md §14).
TEST(BandwidthRpcInterplay, LoopbackTransportLeavesBandwidthDelaysIdentical) {
  auto run = [](bool use_rpc) {
    util::Rng rng(9);
    auto catalog = device::DeviceCatalog::standard();
    device::SessionGeneratorConfig sessions;
    sessions.clients = 60;
    sessions.days = 1;
    sessions.mean_session_s = 1800.0;
    auto log = device::generate_sessions(sessions, catalog, rng);
    device::AvailabilityCriteria criteria;
    criteria.require_wifi = true;
    auto trace = device::build_availability(log, criteria, catalog);

    data::SyntheticTaskConfig task_cfg;
    task_cfg.domain = data::Domain::kAds;
    task_cfg.clients = 60;
    task_cfg.mean_records = 30.0;
    task_cfg.max_records = 200;
    task_cfg.dense_dim = 8;
    task_cfg.test_examples = 200;
    auto task = data::make_synthetic_task(task_cfg, rng);
    auto model = task.make_model(rng);

    net::PufferLikeBandwidthModel bandwidth;
    fl::AsyncConfig cfg;
    cfg.inputs.dataset = &task.train;
    cfg.inputs.dense_dim = task.batch_dense_dim();
    cfg.inputs.model_template = model.get();
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &catalog;
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.test = &task.test;
    cfg.inputs.domain = task.config.domain;
    cfg.inputs.local.loss = task.loss_kind();
    // Large updates make comm the dominant duration term, so any rpc-side
    // perturbation of the bandwidth-model draws would be visible here.
    cfg.inputs.duration.update_bytes = 2'000'000;
    cfg.inputs.max_rounds = 3;
    cfg.inputs.reparticipation_gap_s = 600.0;
    cfg.inputs.seed = 9;
    cfg.buffer_size = 4;
    cfg.max_concurrency = 8;

    std::unique_ptr<fl::RpcRuntime> rpc;
    if (use_rpc) {
      fl::RpcRuntimeConfig rpc_cfg;
      rpc_cfg.kind = fl::TransportKind::kLoopback;
      rpc_cfg.executors = 2;
      rpc = std::make_unique<fl::RpcRuntime>(rpc_cfg, cfg.inputs);
      cfg.inputs.rpc_leader = rpc->leader();
    }
    return fl::run_fedbuff(cfg);
  };

  fl::RunResult in_process = run(/*use_rpc=*/false);
  fl::RunResult loopback = run(/*use_rpc=*/true);
  EXPECT_EQ(in_process.final_parameters, loopback.final_parameters);
  EXPECT_DOUBLE_EQ(in_process.virtual_duration_s, loopback.virtual_duration_s);
  EXPECT_DOUBLE_EQ(in_process.final_metric, loopback.final_metric);
  EXPECT_EQ(in_process.rounds, loopback.rounds);
  EXPECT_EQ(in_process.metrics.tasks_started(), loopback.metrics.tasks_started());
  EXPECT_DOUBLE_EQ(in_process.metrics.mean_round_duration_s(),
                   loopback.metrics.mean_round_duration_s());
  EXPECT_DOUBLE_EQ(in_process.metrics.client_compute_s(), loopback.metrics.client_compute_s());
}

}  // namespace
}  // namespace flint
