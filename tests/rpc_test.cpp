// Tests for the flint::rpc subsystem (DESIGN.md §14): framing and the
// frame-corruption matrix, message schema round-trips, all three transports,
// and the leader/executor runtime including executor-loss re-dispatch.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <set>

#include "flint/compress/quantize.h"
#include "flint/obs/telemetry.h"
#include "flint/obs/telemetry_snapshot.h"
#include "flint/obs/trace.h"
#include "flint/rpc/executor_worker.h"
#include "flint/rpc/frame.h"
#include "flint/rpc/leader.h"
#include "flint/rpc/messages.h"
#include "flint/rpc/transport.h"
#include "flint/util/check.h"
#include "flint/util/rng.h"
#include "flint/util/thread_pool.h"

namespace flint {
namespace {

rpc::Frame heartbeat_frame() {
  rpc::HeartbeatMsg beat;
  beat.executor_id = 7;
  beat.seq = 42;
  beat.busy_leases = 3;
  return rpc::Frame{rpc::MessageType::kHeartbeat, beat.serialize()};
}

// ------------------------------------------------------------- framing

TEST(Frame, EncodeDecodeRoundtrip) {
  rpc::Frame frame = heartbeat_frame();
  std::vector<char> wire = rpc::encode_frame(frame);
  EXPECT_EQ(wire.size(),
            rpc::kFrameHeaderBytes + frame.payload.size() + rpc::kFrameTrailerBytes);
  rpc::Frame decoded = rpc::decode_frame(wire);
  EXPECT_EQ(decoded.type, rpc::MessageType::kHeartbeat);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(Frame, EmptyPayloadRoundtrip) {
  rpc::Frame frame{rpc::MessageType::kShutdown, {}};
  rpc::Frame decoded = rpc::decode_frame(rpc::encode_frame(frame));
  EXPECT_EQ(decoded.type, rpc::MessageType::kShutdown);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(FrameDecoder, ReassemblesFromSingleByteFeeds) {
  rpc::Frame frame = heartbeat_frame();
  std::vector<char> wire = rpc::encode_frame(frame);
  rpc::FrameDecoder decoder;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(decoder.next().has_value());
    decoder.feed(&wire[i], 1);
  }
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, frame.payload);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, YieldsBackToBackFrames) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  std::vector<char> twice = wire;
  twice.insert(twice.end(), wire.begin(), wire.end());
  rpc::FrameDecoder decoder;
  decoder.feed(twice.data(), twice.size());
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_FALSE(decoder.next().has_value());
}

// The corruption matrix: every way a frame can be malformed must throw
// CheckError before any payload byte is trusted (never garbage decode).

TEST(FrameCorruption, TruncatedFrameRejected) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  wire.pop_back();  // torn mid-CRC
  EXPECT_THROW(rpc::decode_frame(wire), util::CheckError);
}

TEST(FrameCorruption, PayloadBitFlipFailsCrc) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  wire[rpc::kFrameHeaderBytes] ^= 0x01;
  EXPECT_THROW(rpc::decode_frame(wire), util::CheckError);
}

TEST(FrameCorruption, BadMagicRejected) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  wire[0] ^= 0x01;
  EXPECT_THROW(rpc::decode_frame(wire), util::CheckError);
}

TEST(FrameCorruption, WrongProtocolVersionRejected) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  wire[4] ^= 0x01;  // protocol u16 follows the magic
  EXPECT_THROW(rpc::decode_frame(wire), util::CheckError);
}

TEST(FrameCorruption, UnknownMessageTypeRejected) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  wire[6] = 99;  // type u16 follows protocol
  EXPECT_THROW(rpc::decode_frame(wire), util::CheckError);
}

TEST(FrameCorruption, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A corrupt length prefix must be rejected the moment the header is
  // complete — no buffering of (or allocation for) a 4GB "payload".
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  std::uint32_t huge = rpc::kMaxFramePayload + 1;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));  // payload_len field
  rpc::FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), rpc::kFrameHeaderBytes); decoder.next(),
               util::CheckError);
}

TEST(FrameCorruption, TrailingGarbageRejectedByStrictDecode) {
  std::vector<char> wire = rpc::encode_frame(heartbeat_frame());
  wire.push_back('x');
  EXPECT_THROW(rpc::decode_frame(wire), util::CheckError);
}

TEST(FrameCorruption, WrongSchemaVersionRejected) {
  rpc::HeartbeatMsg beat;
  std::vector<char> payload = beat.serialize();
  payload[0] = 0x7F;  // schema version u16 leads every message
  EXPECT_THROW(rpc::HeartbeatMsg::deserialize(payload), util::CheckError);
}

TEST(FrameCorruption, TrailingMessageBytesRejected) {
  rpc::HeartbeatMsg beat;
  std::vector<char> payload = beat.serialize();
  payload.push_back('\0');
  EXPECT_THROW(rpc::HeartbeatMsg::deserialize(payload), util::CheckError);
}

// ------------------------------------------------------------- messages

TEST(Messages, RegisterRoundtrip) {
  rpc::RegisterExecutorMsg reg;
  reg.name = "pid:4242";
  reg.slots = 4;
  auto out = rpc::RegisterExecutorMsg::deserialize(reg.serialize());
  EXPECT_EQ(out.name, "pid:4242");
  EXPECT_EQ(out.slots, 4u);

  rpc::RegisterAckMsg ack;
  ack.executor_id = 3;
  ack.heartbeat_interval_s = 0.25;
  ack.heartbeat_timeout_s = 5.0;
  ack.dense_dim = 16;
  ack.model_blob = {'m', 'o', 'd', 'e', 'l'};
  auto ack_out = rpc::RegisterAckMsg::deserialize(ack.serialize());
  EXPECT_EQ(ack_out.executor_id, 3u);
  EXPECT_DOUBLE_EQ(ack_out.heartbeat_interval_s, 0.25);
  EXPECT_EQ(ack_out.dense_dim, 16u);
  EXPECT_EQ(ack_out.model_blob, ack.model_blob);
}

TEST(Messages, TaskLeaseRoundtripCarriesCompleteInputs) {
  rpc::TaskLeaseMsg lease;
  lease.lease_id = 11;
  lease.task_id = 12;
  lease.client_id = 13;
  lease.round = 14;
  lease.seed = 15;
  lease.dp_participants = 8;
  lease.lr = 0.01;
  lease.epochs = 3;
  lease.batch_size = 32;
  lease.loss_kind = 1;
  lease.clip_norm = 2.5;
  lease.momentum = 0.9;
  lease.prox_mu = 0.1;
  lease.has_dp = true;
  lease.dp_clip_norm = 1.5;
  lease.dp_noise_multiplier = 0.7;
  lease.dp_delta = 1e-5;
  lease.compression_kind = 2;
  lease.top_k_fraction = 0.25;
  lease.params = {1.0f, -2.0f, 3.5f};
  ml::Example ex;
  ex.dense = {0.5f, 0.25f};
  ex.tokens = {7, 9};
  ex.label = 1.0f;
  ex.label2 = 0.5f;
  ex.group = 3;
  lease.examples = {ex};

  auto out = rpc::TaskLeaseMsg::deserialize(lease.serialize());
  EXPECT_EQ(out.lease_id, 11u);
  EXPECT_EQ(out.task_id, 12u);
  EXPECT_EQ(out.seed, 15u);
  EXPECT_EQ(out.epochs, 3);
  EXPECT_EQ(out.batch_size, 32u);
  EXPECT_TRUE(out.has_dp);
  EXPECT_DOUBLE_EQ(out.dp_noise_multiplier, 0.7);
  EXPECT_EQ(out.compression_kind, 2u);
  EXPECT_EQ(out.params, lease.params);
  ASSERT_EQ(out.examples.size(), 1u);
  EXPECT_EQ(out.examples[0].dense, ex.dense);
  EXPECT_EQ(out.examples[0].tokens, ex.tokens);
  EXPECT_FLOAT_EQ(out.examples[0].label, 1.0f);
  EXPECT_EQ(out.examples[0].group, 3u);
}

TEST(Messages, TaskResultAndShutdownRoundtrip) {
  rpc::TaskResultMsg result;
  result.lease_id = 5;
  result.task_id = 6;
  result.executor_id = 2;
  result.ok = false;
  result.error = "dimension mismatch";
  result.delta = {0.5f};
  result.weight = 3.0;
  result.mean_loss = 0.25;
  result.examples = 40;
  auto out = rpc::TaskResultMsg::deserialize(result.serialize());
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, "dimension mismatch");
  EXPECT_EQ(out.delta, result.delta);
  EXPECT_EQ(out.examples, 40u);

  rpc::ShutdownMsg bye;
  bye.reason = "run complete";
  EXPECT_EQ(rpc::ShutdownMsg::deserialize(bye.serialize()).reason, "run complete");
}

// Deterministic pseudo-gradient for the wire-format tests.
std::vector<float> test_delta(std::size_t n) {
  util::Rng rng(97);
  std::vector<float> delta(n);
  for (float& v : delta) v = static_cast<float>(rng.normal(0.0, 0.1));
  return delta;
}

rpc::TaskResultMsg result_with(const std::vector<float>& delta,
                               const compress::CompressionConfig& compression) {
  rpc::TaskResultMsg result;
  result.lease_id = 7;
  result.task_id = 8;
  result.executor_id = 1;
  result.weight = 2.0;
  result.mean_loss = 0.5;
  result.examples = 10;
  result.encode_delta(delta, compression);
  return result;
}

// The v3 wire contract (DESIGN.md §16): decoding a compressed result must
// produce bit-for-bit what the in-process path's apply_compression produces,
// so transport choice cannot change the aggregate.
TEST(Messages, TaskResultV3Int8MatchesInProcessCompression) {
  const std::vector<float> delta = test_delta(257);  // odd size: exercises tails
  compress::CompressionConfig cfg;
  cfg.kind = compress::CompressionKind::kInt8;

  std::vector<float> reference = delta;
  compress::apply_compression(reference, cfg);

  auto out = rpc::TaskResultMsg::deserialize(result_with(delta, cfg).serialize());
  EXPECT_EQ(out.compression_kind, static_cast<std::uint32_t>(compress::CompressionKind::kInt8));
  std::vector<float> decoded = out.take_delta();
  ASSERT_EQ(decoded.size(), reference.size());
  EXPECT_EQ(0, std::memcmp(decoded.data(), reference.data(), decoded.size() * sizeof(float)));
}

TEST(Messages, TaskResultV3TopKMatchesInProcessCompression) {
  const std::vector<float> delta = test_delta(300);
  compress::CompressionConfig cfg;
  cfg.kind = compress::CompressionKind::kTopK;
  cfg.top_k_fraction = 0.25;

  std::vector<float> reference = delta;
  compress::apply_compression(reference, cfg);

  auto out = rpc::TaskResultMsg::deserialize(result_with(delta, cfg).serialize());
  std::vector<float> decoded = out.take_delta();
  ASSERT_EQ(decoded.size(), reference.size());
  EXPECT_EQ(0, std::memcmp(decoded.data(), reference.data(), decoded.size() * sizeof(float)));
}

// Satellite: rpc.bytes_sent must genuinely shrink for int8 results, and the
// shrink must reconcile with QuantizedUpdate::payload_bytes() — every byte
// of difference between the two wire messages is payload, nothing else.
TEST(Messages, Int8WireBytesShrinkAndReconcileWithPayloadBytes) {
  const std::vector<float> delta = test_delta(1024);
  compress::CompressionConfig raw;  // kNone
  compress::CompressionConfig int8;
  int8.kind = compress::CompressionKind::kInt8;

  rpc::TaskResultMsg raw_msg = result_with(delta, raw);
  rpc::TaskResultMsg int8_msg = result_with(delta, int8);
  const std::size_t raw_wire = raw_msg.serialize().size();
  const std::size_t int8_wire = int8_msg.serialize().size();

  EXPECT_LT(int8_wire, raw_wire);
  // ~4x payload shrink dominates the fixed header: the whole message must be
  // well under half the raw one at this size.
  EXPECT_LT(int8_wire, raw_wire / 2);

  EXPECT_EQ(raw_msg.payload_bytes(), delta.size() * sizeof(float));
  EXPECT_EQ(int8_msg.payload_bytes(), compress::quantize_int8(delta).payload_bytes());
  // Same schema around different payloads: wire difference == payload
  // difference exactly (the int8 payload serializes scale + values, which is
  // what payload_bytes() counts).
  EXPECT_EQ(raw_wire - int8_wire, raw_msg.payload_bytes() - int8_msg.payload_bytes());
}

TEST(Messages, TaskResultRejectsUnknownCompressionKind) {
  rpc::TaskResultMsg msg = result_with(test_delta(8), compress::CompressionConfig{});
  std::vector<char> bytes = msg.serialize();
  // compression_kind sits after schema(u32) + lease/task/executor ids
  // (3 x u64) + ok(u8) + error string (u64 length, empty) + trace/span ids
  // (2 x u64). Flip it to an undefined value.
  const std::size_t kind_offset = 4 + 3 * 8 + 1 + 8 + 2 * 8;
  std::uint32_t bogus = 0xABCD;
  std::memcpy(bytes.data() + kind_offset, &bogus, sizeof(bogus));
  EXPECT_THROW(rpc::TaskResultMsg::deserialize(bytes), util::CheckError);
}

TEST(Messages, RegisterAckCarriesLeaderWallClock) {
  rpc::RegisterAckMsg ack;
  ack.executor_id = 1;
  ack.leader_wall_us = 123456.5;
  auto out = rpc::RegisterAckMsg::deserialize(ack.serialize());
  EXPECT_DOUBLE_EQ(out.leader_wall_us, 123456.5);
}

TEST(Messages, LeaseAndResultCarryTraceIds) {
  rpc::TaskLeaseMsg lease;
  lease.lease_id = 0xAAA;
  lease.trace_id = 0xAAA;
  lease.parent_span_id = 0xBBB;
  auto lease_out = rpc::TaskLeaseMsg::deserialize(lease.serialize());
  EXPECT_EQ(lease_out.trace_id, 0xAAAu);
  EXPECT_EQ(lease_out.parent_span_id, 0xBBBu);

  rpc::TaskResultMsg result;
  result.trace_id = 0xAAA;
  result.span_id = (std::uint64_t{3} << 32) + 7;  // executor-3 span-id space
  auto result_out = rpc::TaskResultMsg::deserialize(result.serialize());
  EXPECT_EQ(result_out.trace_id, 0xAAAu);
  EXPECT_EQ(result_out.span_id, (std::uint64_t{3} << 32) + 7);
}

TEST(Messages, HeartbeatCarriesTelemetryPayload) {
  obs::MetricRegistry registry;
  registry.counter("rpc.leases_served").add(4);
  obs::TelemetrySnapshotEncoder encoder;
  rpc::HeartbeatMsg beat;
  beat.executor_id = 2;
  beat.seq = 9;
  beat.telemetry = encoder.encode(registry).serialize();

  auto out = rpc::HeartbeatMsg::deserialize(beat.serialize());
  EXPECT_EQ(out.telemetry, beat.telemetry);
  obs::TelemetrySnapshot snapshot = obs::TelemetrySnapshot::deserialize(out.telemetry);
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "rpc.leases_served");
  EXPECT_EQ(snapshot.counters[0].delta, 4u);
}

// ------------------------------------------------- telemetry shipping

TEST(TelemetrySnapshot, EncoderEmitsDeltasAndSkipsUnchanged) {
  obs::MetricRegistry registry;
  registry.counter("c").add(5);
  registry.gauge("g").set(2.5);
  registry.histogram("h", 0.0, 10.0, 4).record(3.0);
  obs::TelemetrySnapshotEncoder encoder;

  obs::TelemetrySnapshot first = encoder.encode(registry);
  EXPECT_EQ(first.seq, 1u);
  ASSERT_EQ(first.counters.size(), 1u);
  EXPECT_EQ(first.counters[0].delta, 5u);
  ASSERT_EQ(first.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(first.gauges[0].value, 2.5);
  ASSERT_EQ(first.histograms.size(), 1u);
  EXPECT_EQ(first.histograms[0].count_delta, 1u);
  EXPECT_DOUBLE_EQ(first.histograms[0].sum_delta, 3.0);

  // Nothing changed: counters/histograms drop out (delta 0); gauges re-ship
  // their absolute value every window (last-write-wins semantics).
  obs::TelemetrySnapshot second = encoder.encode(registry);
  EXPECT_EQ(second.seq, 2u);
  EXPECT_TRUE(second.counters.empty());
  EXPECT_TRUE(second.histograms.empty());
  EXPECT_EQ(second.gauges.size(), 1u);

  registry.counter("c").add(2);
  obs::TelemetrySnapshot third = encoder.encode(registry);
  ASSERT_EQ(third.counters.size(), 1u);
  EXPECT_EQ(third.counters[0].delta, 2u);  // the window's delta, not the total 7
}

TEST(TelemetrySnapshot, SerializeDeserializeRoundtrip) {
  obs::MetricRegistry registry;
  registry.counter("tasks").add(11);
  registry.gauge("alive").set(1.0);
  registry.histogram("lat", 0.0, 1.0, 8).record(0.25);
  registry.histogram("lat", 0.0, 1.0, 8).record(0.75);
  obs::TelemetrySnapshotEncoder encoder;
  obs::TelemetrySnapshot snapshot = encoder.encode(registry);

  obs::TelemetrySnapshot out = obs::TelemetrySnapshot::deserialize(snapshot.serialize());
  EXPECT_EQ(out.seq, snapshot.seq);
  ASSERT_EQ(out.counters.size(), 1u);
  EXPECT_EQ(out.counters[0].name, "tasks");
  EXPECT_EQ(out.counters[0].delta, 11u);
  ASSERT_EQ(out.histograms.size(), 1u);
  EXPECT_EQ(out.histograms[0].count_delta, 2u);
  EXPECT_DOUBLE_EQ(out.histograms[0].sum_delta, 1.0);
  EXPECT_EQ(out.histograms[0].bucket_deltas, snapshot.histograms[0].bucket_deltas);
}

// The snapshot corruption matrix mirrors the frame one: truncation, version
// skew, and hostile counts must throw before any value is trusted.

TEST(TelemetrySnapshotCorruption, TruncatedRejected) {
  obs::MetricRegistry registry;
  registry.counter("c").add(1);
  obs::TelemetrySnapshotEncoder encoder;
  std::vector<char> bytes = encoder.encode(registry).serialize();
  bytes.pop_back();
  EXPECT_THROW(obs::TelemetrySnapshot::deserialize(bytes), util::CheckError);
}

TEST(TelemetrySnapshotCorruption, WrongSchemaVersionRejected) {
  std::vector<char> bytes = obs::TelemetrySnapshot{}.serialize();
  bytes[0] = 0x7F;  // schema version u16 leads the payload
  EXPECT_THROW(obs::TelemetrySnapshot::deserialize(bytes), util::CheckError);
}

TEST(TelemetrySnapshotCorruption, OversizedSeriesCountRejected) {
  std::vector<char> bytes = obs::TelemetrySnapshot{}.serialize();
  // n_counters u32 sits after version u16 + seq u64; claim 2^31 series.
  std::uint32_t huge = 1u << 31;
  std::memcpy(bytes.data() + 10, &huge, sizeof(huge));
  EXPECT_THROW(obs::TelemetrySnapshot::deserialize(bytes), util::CheckError);
}

TEST(TelemetrySnapshotCorruption, TrailingBytesRejected) {
  std::vector<char> bytes = obs::TelemetrySnapshot{}.serialize();
  bytes.push_back('\0');
  EXPECT_THROW(obs::TelemetrySnapshot::deserialize(bytes), util::CheckError);
}

TEST(TelemetrySnapshot, MergerLabelsSeriesAndDropsDuplicates) {
  obs::MetricRegistry source;
  source.counter("rpc.leases_served").add(6);
  source.gauge("mem").set(3.0);
  obs::TelemetrySnapshotEncoder encoder;
  obs::TelemetrySnapshot snapshot = encoder.encode(source);

  obs::MetricRegistry leader_registry;
  obs::TelemetrySnapshotMerger merger;
  EXPECT_TRUE(merger.apply(3, snapshot, leader_registry));
  // A re-delivered heartbeat replays the same seq: must be a no-op.
  EXPECT_FALSE(merger.apply(3, snapshot, leader_registry));
  EXPECT_EQ(leader_registry.counter(
                obs::executor_series_label("rpc.leases_served", 3)).value(), 6u);
  EXPECT_DOUBLE_EQ(leader_registry.gauge(obs::executor_series_label("mem", 3)).value(),
                   3.0);

  // A different executor shipping the same seq is independent state.
  EXPECT_TRUE(merger.apply(4, snapshot, leader_registry));
  EXPECT_EQ(leader_registry.counter(
                obs::executor_series_label("rpc.leases_served", 4)).value(), 6u);
}

// ------------------------------------------------------------- transports

TEST(LoopbackTransport, DeliversFramesBothWays) {
  auto [a, b] = rpc::LoopbackTransport::make_pair();
  ASSERT_TRUE(a->send(heartbeat_frame()));
  rpc::Frame got;
  ASSERT_EQ(b->recv(got, 1.0), rpc::RecvStatus::kFrame);
  EXPECT_EQ(got.type, rpc::MessageType::kHeartbeat);
  ASSERT_TRUE(b->send(rpc::Frame{rpc::MessageType::kShutdown, {}}));
  ASSERT_EQ(a->recv(got, 1.0), rpc::RecvStatus::kFrame);
  EXPECT_EQ(got.type, rpc::MessageType::kShutdown);
}

TEST(LoopbackTransport, TimesOutThenSeesClose) {
  auto [a, b] = rpc::LoopbackTransport::make_pair();
  rpc::Frame got;
  EXPECT_EQ(a->recv(got, 0.0), rpc::RecvStatus::kTimeout);
  b->close();
  EXPECT_EQ(a->recv(got, 1.0), rpc::RecvStatus::kClosed);
  EXPECT_FALSE(a->send(heartbeat_frame()));
}

TEST(UnixSocketTransport, ConnectSendRecvClose) {
  std::string path = testing::TempDir() + "rpc_test_unix.sock";
  rpc::Listener listener = rpc::Listener::listen_unix(path);
  // The backlog holds the connection until accept(), so no second thread is
  // needed for a same-process handshake.
  auto client = rpc::connect_unix(path);
  auto server = listener.accept(2.0);
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client->send(heartbeat_frame()));
  rpc::Frame got;
  ASSERT_EQ(server->recv(got, 2.0), rpc::RecvStatus::kFrame);
  EXPECT_EQ(got.payload, heartbeat_frame().payload);
  ASSERT_TRUE(server->send(rpc::Frame{rpc::MessageType::kShutdown, {}}));
  ASSERT_EQ(client->recv(got, 2.0), rpc::RecvStatus::kFrame);

  client->close();
  EXPECT_EQ(server->recv(got, 2.0), rpc::RecvStatus::kClosed);
}

TEST(UnixSocketTransport, ConnectToMissingPathThrows) {
  EXPECT_THROW(rpc::connect_unix(testing::TempDir() + "no_such_rpc.sock"),
               util::CheckError);
}

TEST(TcpTransport, ConnectSendRecvOnEphemeralPort) {
  rpc::Listener listener = rpc::Listener::listen_tcp(0);
  ASSERT_NE(listener.port(), 0);
  auto client = rpc::connect_tcp("127.0.0.1", listener.port());
  auto server = listener.accept(2.0);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(client->send(heartbeat_frame()));
  rpc::Frame got;
  ASSERT_EQ(server->recv(got, 2.0), rpc::RecvStatus::kFrame);
  EXPECT_EQ(got.type, rpc::MessageType::kHeartbeat);
}

TEST(TcpTransport, AcceptTimesOutWithoutConnection) {
  rpc::Listener listener = rpc::Listener::listen_tcp(0);
  EXPECT_EQ(listener.accept(0.05), nullptr);
}

// ------------------------------------------------------- leader/executor

/// Deterministic stub: delta = 2 * params, weight = client_id.
class StubService final : public rpc::TrainService {
 public:
  void configure(const rpc::RegisterAckMsg& ack) override { dense_dim_ = ack.dense_dim; }
  rpc::TaskResultMsg run_lease(const rpc::TaskLeaseMsg& lease) override {
    rpc::TaskResultMsg result;
    result.ok = true;
    result.delta = lease.params;
    for (float& v : result.delta) v *= 2.0f;
    result.weight = static_cast<double>(lease.client_id);
    result.mean_loss = 0.5;
    result.examples = lease.examples.size();
    return result;
  }

 private:
  std::uint64_t dense_dim_ = 0;
};

rpc::TaskLeaseMsg stub_lease(std::uint64_t task_id, std::uint64_t client_id) {
  rpc::TaskLeaseMsg lease;
  lease.task_id = task_id;
  lease.client_id = client_id;
  lease.params = {1.0f, 2.0f, 3.0f};
  return lease;
}

/// Queue a worker serving StubService over the peer end of a loopback pair.
std::future<void> spawn_stub_worker(util::ThreadPool& pool,
                                    std::shared_ptr<rpc::Transport> endpoint,
                                    const std::string& name) {
  return pool.submit([endpoint, name] {
    StubService service;
    rpc::ExecutorWorker worker(*endpoint, service, name);
    worker.run();
  });
}

TEST(LeaderExecutor, ServesLeasesOverLoopback) {
  rpc::LeaderConfig config;
  config.dense_dim = 3;
  rpc::Leader leader(config);
  util::ThreadPool pool(2);
  std::vector<std::future<void>> workers;
  for (int i = 0; i < 2; ++i) {
    auto [leader_end, worker_end] = rpc::LoopbackTransport::make_pair();
    workers.push_back(spawn_stub_worker(pool, std::move(worker_end),
                                        "stub-" + std::to_string(i)));
    leader.add_transport(std::move(leader_end));
  }
  EXPECT_EQ(leader.alive_executors(), 2u);

  std::vector<std::uint64_t> lease_ids;
  for (std::uint64_t i = 0; i < 6; ++i)
    lease_ids.push_back(leader.submit(stub_lease(/*task_id=*/100 + i, /*client_id=*/i)));
  for (std::uint64_t i = 0; i < 6; ++i) {
    rpc::TaskResultMsg result = leader.wait(lease_ids[i]);
    EXPECT_EQ(result.task_id, 100 + i);
    ASSERT_EQ(result.delta.size(), 3u);
    EXPECT_FLOAT_EQ(result.delta[0], 2.0f);
    EXPECT_DOUBLE_EQ(result.weight, static_cast<double>(i));
  }

  leader.shutdown("test done");
  for (auto& worker : workers) worker.get();  // propagates any worker throw
}

TEST(LeaderExecutor, FailedLeaseSurfacesExecutorError) {
  // A service reporting ok=false must turn into a CheckError at wait(), with
  // the executor's message attached.
  class FailingService final : public rpc::TrainService {
   public:
    void configure(const rpc::RegisterAckMsg&) override {}
    rpc::TaskResultMsg run_lease(const rpc::TaskLeaseMsg&) override {
      rpc::TaskResultMsg result;
      result.ok = false;
      result.error = "synthetic failure";
      return result;
    }
  };
  rpc::Leader leader(rpc::LeaderConfig{});
  util::ThreadPool pool(1);
  auto [leader_end, worker_end] = rpc::LoopbackTransport::make_pair();
  std::shared_ptr<rpc::Transport> endpoint = std::move(worker_end);
  auto worker = pool.submit([endpoint] {
    FailingService service;
    rpc::ExecutorWorker w(*endpoint, service, "failing");
    w.run();
  });
  leader.add_transport(std::move(leader_end));
  std::uint64_t lease_id = leader.submit(stub_lease(1, 1));
  EXPECT_THROW(leader.wait(lease_id), util::CheckError);
  leader.shutdown("test done");
  worker.get();
}

TEST(LeaderExecutor, RedispatchesWhenExecutorDies) {
  rpc::LeaderConfig config;
  rpc::Leader leader(config);
  util::ThreadPool pool(1);

  // Executor 1: a live stub worker. Executor 2: hand-driven from this test —
  // it registers, accepts a lease, and then dies without answering.
  auto [leader_end, worker_end] = rpc::LoopbackTransport::make_pair();
  auto worker = spawn_stub_worker(pool, std::move(worker_end), "survivor");
  leader.add_transport(std::move(leader_end));

  auto [fake_leader_end, fake] = rpc::LoopbackTransport::make_pair();
  rpc::RegisterExecutorMsg reg;
  reg.name = "doomed";
  ASSERT_TRUE(fake->send(rpc::Frame{rpc::MessageType::kRegisterExecutor, reg.serialize()}));
  leader.add_transport(std::move(fake_leader_end));  // reads the queued Register
  ASSERT_EQ(leader.alive_executors(), 2u);

  // Round-robin: lease 1 -> executor 1 (survivor), lease 2 -> executor 2.
  std::uint64_t first = leader.submit(stub_lease(201, 1));
  std::uint64_t second = leader.submit(stub_lease(202, 2));
  fake->close();  // SIGKILL stand-in: the leader sees EOF and must re-dispatch

  rpc::TaskResultMsg r1 = leader.wait(first);
  rpc::TaskResultMsg r2 = leader.wait(second);
  EXPECT_EQ(r1.task_id, 201u);
  EXPECT_EQ(r2.task_id, 202u);  // completed by the survivor after re-dispatch
  EXPECT_EQ(leader.alive_executors(), 1u);

  leader.shutdown("test done");
  worker.get();
}

TEST(LeaderExecutor, LoopbackRunPropagatesSpans) {
  // Satellite regression: a full loopback run must leave a complete span
  // record — one rpc.dispatch per lease on the leader side, one
  // rpc.lease_execute per lease on the worker side, each execute span
  // parented to its dispatch span and sharing the lease's trace id.
  obs::TelemetryConfig tc;
  tc.metrics_enabled = true;
  tc.tracing_enabled = true;
  obs::Telemetry telemetry(std::move(tc));
  obs::ScopedTelemetry scoped(&telemetry);

  constexpr std::uint64_t kLeases = 4;
  {
    rpc::LeaderConfig config;
    config.dense_dim = 3;
    rpc::Leader leader(config);
    util::ThreadPool pool(1);
    auto [leader_end, worker_end] = rpc::LoopbackTransport::make_pair();
    auto worker = spawn_stub_worker(pool, std::move(worker_end), "traced");
    leader.add_transport(std::move(leader_end));
    std::vector<std::uint64_t> lease_ids;
    for (std::uint64_t i = 0; i < kLeases; ++i)
      lease_ids.push_back(leader.submit(stub_lease(400 + i, i)));
    for (std::uint64_t id : lease_ids) leader.wait(id);
    leader.shutdown("test done");
    worker.get();
  }

  std::set<std::uint64_t> dispatch_span_ids;
  std::set<std::uint64_t> dispatch_trace_ids;
  std::vector<obs::TraceEvent> execute_spans;
  for (const obs::TraceEvent& e : telemetry.tracer().events_snapshot()) {
    if (std::string(e.name) == "rpc.dispatch") {
      EXPECT_NE(e.span_id, 0u);
      EXPECT_NE(e.trace_id, 0u);
      dispatch_span_ids.insert(e.span_id);
      dispatch_trace_ids.insert(e.trace_id);
    } else if (std::string(e.name) == "rpc.lease_execute") {
      execute_spans.push_back(e);
    }
  }
  EXPECT_EQ(dispatch_span_ids.size(), kLeases);
  ASSERT_EQ(execute_spans.size(), kLeases);
  for (const obs::TraceEvent& e : execute_spans) {
    EXPECT_NE(e.span_id, 0u);
    EXPECT_TRUE(dispatch_span_ids.count(e.parent_span_id))
        << "execute span " << e.span_id << " parent " << e.parent_span_id
        << " matches no dispatch span";
    EXPECT_TRUE(dispatch_trace_ids.count(e.trace_id));
  }
}

TEST(LeaderExecutor, AllExecutorsDeadThrows) {
  rpc::Leader leader(rpc::LeaderConfig{});
  auto [fake_leader_end, fake] = rpc::LoopbackTransport::make_pair();
  rpc::RegisterExecutorMsg reg;
  reg.name = "only";
  ASSERT_TRUE(fake->send(rpc::Frame{rpc::MessageType::kRegisterExecutor, reg.serialize()}));
  leader.add_transport(std::move(fake_leader_end));
  std::uint64_t lease_id = leader.submit(stub_lease(301, 1));
  fake->close();
  EXPECT_THROW(leader.wait(lease_id), util::CheckError);
}

}  // namespace
}  // namespace flint
