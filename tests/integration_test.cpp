// Cross-module integration tests: the full pipeline from synthetic sessions
// and proxy data through simulated FL training, plus fault-tolerance
// recovery semantics (§3.4: "any restarted leader and executor can resume
// from the checkpoints without losing more than one round of work").
#include <gtest/gtest.h>

#include <filesystem>

#include "flint/core/platform.h"
#include "flint/fl/fedbuff.h"
#include "test_helpers.h"

namespace flint {
namespace {

TEST(Integration, SessionsToAvailabilityToFedBuff) {
  // Full path: generate sessions -> apply criteria -> run async FL with a
  // real model over the derived trace.
  core::FlintPlatform platform(21);
  util::Rng rng(22);

  device::SessionGeneratorConfig scfg;
  scfg.clients = 120;
  scfg.days = 7;
  scfg.mean_session_s = 1200.0;  // long sessions so tasks can finish
  auto log = platform.generate_session_log(scfg);

  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  auto trace = platform.build_availability(log, criteria);
  ASSERT_GT(trace.client_count(), 50u);

  auto task = test::small_task(rng, 120);
  auto model = task.make_model(rng);
  double before = task.evaluate(*model);
  net::PufferLikeBandwidthModel bandwidth;

  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, platform.devices(), bandwidth);
  cfg.inputs.duration.base_time_per_example_s = 0.005;
  cfg.inputs.max_rounds = 20;
  cfg.buffer_size = 5;
  cfg.max_concurrency = 20;
  fl::RunResult r = fl::run_fedbuff(cfg);

  EXPECT_GT(r.rounds, 5u);  // trace must sustain meaningful progress
  EXPECT_GT(r.final_metric, before);
  EXPECT_LE(r.virtual_duration_s, trace.horizon());
}

TEST(Integration, CheckpointRecoveryLosesAtMostOneCadence) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "flint_integration_ckpt";
  fs::remove_all(dir);
  store::CheckpointStore ckpt(dir.string());

  util::Rng rng(23);
  auto task = test::small_task(rng, 50);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(50, 1e9);
  auto model = task.make_model(rng);

  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 10;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  cfg.inputs.leader.checkpoint_every_rounds = 1;  // checkpoint every round
  cfg.inputs.leader.checkpoint_store = &ckpt;
  fl::RunResult r = fl::run_fedbuff(cfg);
  ASSERT_EQ(r.rounds, 10u);

  // Simulated leader crash: recover the latest checkpoint. With cadence 1,
  // at most one round of work is lost relative to the finished run.
  auto recovered = ckpt.latest();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_GE(recovered->round, r.rounds - 1);
  EXPECT_EQ(recovered->model_parameters.size(), r.final_parameters.size());

  // A model restored from the checkpoint must evaluate comparably to the
  // final model (they differ by at most one aggregation).
  auto restored_model = task.make_model(rng);
  restored_model->set_flat_parameters(recovered->model_parameters);
  double restored_metric = task.evaluate(*restored_model);
  EXPECT_NEAR(restored_metric, r.final_metric, 0.15);
  fs::remove_all(dir);
}

TEST(Integration, ProxyHeterogeneityAffectsConvergenceStability) {
  // The paper's Figure 10 observation: under heterogeneous client sampling,
  // outcomes vary visibly across seeds because early-round client selection
  // drives convergence. Verify the framework surfaces that seed variance.
  util::Rng rng(25);
  data::SyntheticTaskConfig base;
  base.clients = 60;
  base.mean_records = 15;
  base.std_records = 10;
  base.dense_dim = 8;
  base.test_examples = 500;

  auto run_with_heterogeneity = [&](double h) {
    data::SyntheticTaskConfig cfg = base;
    cfg.heterogeneity = h;
    util::Rng task_rng(31);
    auto task = data::make_synthetic_task(cfg, task_rng);
    auto catalog = device::DeviceCatalog::standard();
    net::FixedBandwidthModel bw(50.0);
    auto trace = test::always_available(60, 1e9);
    auto model = task.make_model(task_rng);
    fl::AsyncConfig fcfg;
    test::wire_inputs(fcfg.inputs, task, *model, trace, catalog, bw);
    fcfg.inputs.max_rounds = 15;
    fcfg.buffer_size = 5;
    fcfg.max_concurrency = 10;
    return core::run_trials_fedbuff(fcfg, 3);
  };

  core::TrialSummary heterogeneous = run_with_heterogeneity(1.5);
  // Trials differ only by seed (client selection order + init); under strong
  // heterogeneity the outcomes must visibly differ yet stay valid metrics.
  EXPECT_GT(heterogeneous.stdev_metric, 0.0);
  for (const auto& trial : heterogeneous.trials) {
    EXPECT_GT(trial.final_metric, 0.0);
    EXPECT_LE(trial.final_metric, 1.0);
  }
}

TEST(Integration, ModelStoreRoundTripsTrainedModel) {
  util::Rng rng(27);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(40, 1e9);
  auto model = task.make_model(rng);

  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 10;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  fl::RunResult r = fl::run_fedbuff(cfg);

  store::ModelStore store;
  store.put("trained", r.final_parameters, "round-10", r.virtual_duration_s);

  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() / "flint_integration_store";
  fs::remove_all(dir);
  fs::create_directories(dir);
  store.save_to_dir(dir.string());
  auto loaded = store::ModelStore::load_from_dir(dir.string());
  auto version = loaded.latest("trained");
  ASSERT_TRUE(version.has_value());

  auto restored = task.make_model(rng);
  restored->set_flat_parameters(version->parameters);
  EXPECT_NEAR(task.evaluate(*restored), r.final_metric, 1e-9);
  fs::remove_all(dir);
}

TEST(Integration, ExecutorPartitioningFeedsPool) {
  util::Rng rng(29);
  auto task = test::small_task(rng, 30);
  auto parts = data::partition_round_robin(task.train, 4);
  sim::ExecutorPool pool(4);
  pool.set_partitioning(parts);
  // Every client routed to its assigned executor.
  for (const auto& client : task.train.clients()) {
    int expected = parts.executor_of(client.client_id);
    ASSERT_GE(expected, 0);
    EXPECT_EQ(pool.executor_of(client.client_id), static_cast<std::size_t>(expected));
  }
}

}  // namespace
}  // namespace flint
