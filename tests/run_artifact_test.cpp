#include "flint/core/run_artifact.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "test_helpers.h"

namespace flint::core {
namespace {

namespace fs = std::filesystem;

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

/// A synthetic run with a few tasks, rounds, and eval points — enough to
/// exercise every artifact section without simulating anything.
fl::RunResult synthetic_run(std::uint64_t rounds = 5) {
  fl::RunResult run;
  sim::TaskResult tr;
  tr.spec.client_id = 7;
  tr.spec.update_bytes = 1000;
  tr.spent_compute_s = 10.0;
  tr.outcome = sim::TaskOutcome::kSucceeded;
  for (int i = 0; i < 4; ++i) {
    run.metrics.on_task_started();
    run.metrics.on_task_finished(tr);
  }
  for (std::uint64_t r = 0; r < rounds; ++r) {
    double start = static_cast<double>(r) * 100.0;
    run.metrics.on_round({r + 1, start, start + 90.0, 4, 0.0});
    run.eval_curve.push_back({start + 90.0, r + 1, 0.5 + 0.01 * static_cast<double>(r), 0.3});
  }
  run.metrics.on_checkpoint({rounds, static_cast<double>(rounds) * 100.0});
  run.rounds = rounds;
  run.final_metric = run.eval_curve.back().metric;
  run.virtual_duration_s = static_cast<double>(rounds) * 100.0;
  return run;
}

// -------------------------------------------------------------- fingerprint

TEST(Fingerprint, Fnv1aKnownValues) {
  // FNV-1a offset basis: hash of the empty string.
  EXPECT_EQ(fingerprint64(""), 1469598103934665603ull);
  EXPECT_EQ(fingerprint64("abc"), fingerprint64("abc"));
  EXPECT_NE(fingerprint64("abc"), fingerprint64("abd"));
  EXPECT_NE(fingerprint64("config a"), fingerprint64("config b"));
}

// ------------------------------------------------------------ JSON rendering

TEST(RunArtifact, RendersAllSections) {
  fl::RunResult run = synthetic_run();
  RunArtifactInputs in;
  in.run = &run;
  in.name = "unit";
  in.metric_name = "AUPR";
  in.config_text = "unit test config";
  in.scalars = {{"alpha", 1.5}, {"beta", -2.0}};
  ResourceForecast forecast = forecast_resources(run, ForecastConfig{});
  in.forecast = &forecast;

  std::string json = render_run_artifact_json(in);
  EXPECT_NE(json.find("\"flint.run_artifact\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"config_fingerprint\""), std::string::npos);
  for (const char* section :
       {"\"model\"", "\"system\"", "\"forecast\"", "\"telemetry\"", "\"ledger\"", "\"timeline\"",
        "\"scalars\""})
    EXPECT_NE(json.find(section), std::string::npos) << section;
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks_started\": 4"), std::string::npos);
  // One eval per round plus the checkpoint land in the timeline.
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"eval\""), 5u);
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"checkpoint\""), 1u);
}

TEST(RunArtifact, FingerprintIsSixteenHexDigits) {
  fl::RunResult run = synthetic_run();
  RunArtifactInputs in;
  in.run = &run;
  in.config_text = "x";
  std::string json = render_run_artifact_json(in);
  auto pos = json.find("\"config_fingerprint\": \"");
  ASSERT_NE(pos, std::string::npos);
  std::string hex = json.substr(pos + std::string("\"config_fingerprint\": \"").size(), 16);
  EXPECT_EQ(hex.size(), 16u);
  for (char c : hex) EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << hex;
}

TEST(RunArtifact, NonFiniteRendersAsNull) {
  fl::RunResult run = synthetic_run();
  RunArtifactInputs in;
  in.run = &run;
  in.scalars = {{"bad", std::numeric_limits<double>::quiet_NaN()},
                {"worse", std::numeric_limits<double>::infinity()}};
  std::string json = render_run_artifact_json(in);
  EXPECT_EQ(count_occurrences(json, "null"), 2u);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(RunArtifact, TimelineRoundsStrideDownToBudget) {
  fl::RunResult run = synthetic_run(/*rounds=*/100);
  RunArtifactInputs in;
  in.run = &run;
  in.max_timeline_events = 120;  // 100 evals + 1 checkpoint leave ~19 round slots
  std::string json = render_run_artifact_json(in);
  std::size_t round_events = count_occurrences(json, "\"kind\":\"round\"");
  EXPECT_LE(round_events, 20u);
  EXPECT_GE(round_events, 1u);
  // Evals and checkpoints are never strided away.
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"eval\""), 100u);
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"checkpoint\""), 1u);
  // The final round survives downsampling.
  EXPECT_NE(json.find("\"kind\":\"round\",\"round\":100"), std::string::npos);
}

TEST(RunArtifact, ZeroBudgetKeepsEveryEvent) {
  fl::RunResult run = synthetic_run(/*rounds=*/50);
  RunArtifactInputs in;
  in.run = &run;
  in.max_timeline_events = 0;
  std::string json = render_run_artifact_json(in);
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"round\""), 50u);
}

TEST(RunArtifact, RequiresRun) {
  RunArtifactInputs in;
  EXPECT_THROW(render_run_artifact_json(in), util::CheckError);
}

TEST(RunArtifact, WriteCreatesParentDirectories) {
  fl::RunResult run = synthetic_run();
  RunArtifactInputs in;
  in.run = &run;
  in.name = "write-test";
  fs::path dir = fs::temp_directory_path() / "flint_run_artifact_test";
  fs::remove_all(dir);
  std::string path = (dir / "nested" / "artifact.json").string();
  write_run_artifact(path, in);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_NE(buf.str().find("\"flint.run_artifact\""), std::string::npos);
  fs::remove_all(dir);
}

// ---------------------------------------------------- ledger reconciliation

void expect_rollups_reconcile(const fl::RunResult& r) {
  const sim::SimMetrics& m = r.metrics;
  ASSERT_FALSE(r.ledger.empty());

  // Totals mirror the aggregate counters exactly: both sides are fed from the
  // same on_task_finished choke point.
  const auto& t = r.ledger.totals;
  EXPECT_EQ(t.tasks_succeeded, m.tasks_succeeded());
  EXPECT_EQ(t.tasks_interrupted, m.tasks_interrupted());
  EXPECT_EQ(t.tasks_stale, m.tasks_stale());
  EXPECT_EQ(t.tasks_failed, m.tasks_failed());
  EXPECT_NEAR(t.compute_s, m.client_compute_s(), 1e-6 * std::max(1.0, m.client_compute_s()));

  // Every classification axis partitions the same account.
  for (const auto* axis : {&r.ledger.by_tier, &r.ledger.by_cohort, &r.ledger.by_executor}) {
    std::uint64_t finished = 0;
    double compute = 0.0;
    std::uint64_t bytes_up = 0;
    for (const auto& row : *axis) {
      finished += row.tasks_finished();
      compute += row.compute_s;
      bytes_up += row.bytes_up;
    }
    EXPECT_EQ(finished, t.tasks_finished());
    EXPECT_NEAR(compute, t.compute_s, 1e-6 * std::max(1.0, t.compute_s));
    EXPECT_EQ(bytes_up, t.bytes_up);
  }

  // Stragglers are ranked worst-first by wasted compute.
  for (std::size_t i = 1; i < r.ledger.stragglers.size(); ++i)
    EXPECT_GE(r.ledger.stragglers[i - 1].wasted_compute_s,
              r.ledger.stragglers[i].wasted_compute_s);
}

TEST(LedgerReconciliation, FedbuffPerTierTotalsMatchSimMetrics) {
  util::Rng rng(11);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::staggered_trace(40, 4000.0, 500.0);
  auto model = task.make_model(rng);
  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 10;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;
  cfg.max_staleness = 2;  // force some stale discards so waste is attributed

  fl::RunResult r = fl::run_fedbuff(cfg);
  ASSERT_GT(r.metrics.tasks_started(), 0u);
  expect_rollups_reconcile(r);
}

TEST(LedgerReconciliation, FedavgMatchesToo) {
  util::Rng rng(12);
  auto task = test::small_task(rng, 40);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(40, 1e9);
  auto model = task.make_model(rng);
  fl::SyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 6;
  cfg.cohort_size = 6;
  cfg.overcommit = 1.5;  // overcommitted stragglers become attributed waste

  fl::RunResult r = fl::run_fedavg(cfg);
  ASSERT_GT(r.metrics.tasks_started(), 0u);
  expect_rollups_reconcile(r);
}

TEST(LedgerReconciliation, DisabledLedgerStaysEmpty) {
  util::Rng rng(13);
  auto task = test::small_task(rng, 20);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(20, 1e9);
  auto model = task.make_model(rng);
  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 3;
  cfg.inputs.collect_ledger = false;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;

  fl::RunResult r = fl::run_fedbuff(cfg);
  EXPECT_GT(r.metrics.tasks_started(), 0u);
  EXPECT_TRUE(r.ledger.empty());
  EXPECT_TRUE(r.ledger.stragglers.empty());
}

TEST(LedgerReconciliation, ArtifactEmbedsReconciledLedger) {
  util::Rng rng(14);
  auto task = test::small_task(rng, 30);
  auto catalog = device::DeviceCatalog::standard();
  net::FixedBandwidthModel bw(50.0);
  auto trace = test::always_available(30, 1e9);
  auto model = task.make_model(rng);
  fl::AsyncConfig cfg;
  test::wire_inputs(cfg.inputs, task, *model, trace, catalog, bw);
  cfg.inputs.max_rounds = 5;
  cfg.buffer_size = 4;
  cfg.max_concurrency = 8;

  fl::RunResult r = fl::run_fedbuff(cfg);
  ASSERT_FALSE(r.ledger.empty());
  RunArtifactInputs in;
  in.run = &r;
  in.name = "ledger-embed";
  std::string json = render_run_artifact_json(in);
  // The totals row and at least one tier row made it into the document.
  EXPECT_NE(json.find("\"key\":\"all\""), std::string::npos);
  std::ostringstream want;
  want << "\"tasks_succeeded\":" << r.metrics.tasks_succeeded();
  EXPECT_NE(json.find(want.str()), std::string::npos);
}

}  // namespace
}  // namespace flint::core
