#include "flint/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flint/util/check.h"
#include "flint/util/rng.h"

namespace flint::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance of this classic set
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.normal(3.0, 7.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(v), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 30.0), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), CheckError);
  EXPECT_THROW(percentile({1.0}, -1.0), CheckError);
  EXPECT_THROW(percentile({1.0}, 101.0), CheckError);
}

TEST(Summarize, Fields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.5);
}

TEST(Summarize, EmptyGivesZeros) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

class LognormalMomentsTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LognormalMomentsTest, RoundTripsAnalytically) {
  auto [mean, stddev] = GetParam();
  LognormalParams p = lognormal_from_moments(mean, stddev);
  // Analytic moments of lognormal(mu, sigma).
  double m = std::exp(p.mu + p.sigma * p.sigma / 2.0);
  double var = (std::exp(p.sigma * p.sigma) - 1.0) * std::exp(2.0 * p.mu + p.sigma * p.sigma);
  EXPECT_NEAR(m, mean, mean * 1e-9);
  EXPECT_NEAR(std::sqrt(var), stddev, stddev * 1e-6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LognormalMomentsTest,
                         ::testing::Values(std::pair{99.0, 667.0},   // Table 2 Dataset A
                                           std::pair{184.0, 374.0},  // Dataset B
                                           std::pair{1.53, 1.47},    // Dataset C
                                           std::pair{240.0, 480.0}, std::pair{1.0, 0.1}));

TEST(LognormalMoments, ZeroStdDegenerates) {
  LognormalParams p = lognormal_from_moments(10.0, 0.0);
  EXPECT_NEAR(std::exp(p.mu), 10.0, 1e-6);
  EXPECT_LT(p.sigma, 1e-6);
}

TEST(LognormalMoments, RejectsNonPositiveMean) {
  EXPECT_THROW(lognormal_from_moments(0.0, 1.0), CheckError);
  EXPECT_THROW(lognormal_from_moments(-1.0, 1.0), CheckError);
}

}  // namespace
}  // namespace flint::util
