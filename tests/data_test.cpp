#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "flint/data/client_dataset.h"
#include "flint/data/dataset_stats.h"
#include "flint/data/partitioner.h"
#include "flint/data/proxy_generator.h"
#include "flint/util/stats.h"

namespace flint::data {
namespace {

ml::Example labeled(float label) {
  ml::Example e;
  e.dense = {1.0f};
  e.label = label;
  return e;
}

std::vector<ml::Example> binary_records(std::size_t n, double positive_rate, util::Rng& rng) {
  std::vector<ml::Example> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(labeled(rng.bernoulli(positive_rate) ? 1.0f : 0.0f));
  return out;
}

// -------------------------------------------------------- FederatedDataset

TEST(FederatedDataset, AddAndLookup) {
  FederatedDataset d;
  d.add_client({7, {labeled(1.0f), labeled(0.0f)}});
  d.add_client({3, {labeled(1.0f)}});
  EXPECT_EQ(d.client_count(), 2u);
  EXPECT_EQ(d.example_count(), 3u);
  EXPECT_TRUE(d.contains(7));
  EXPECT_FALSE(d.contains(8));
  EXPECT_EQ(d.client(7).size(), 2u);
  EXPECT_EQ(d.client_at(1).client_id, 3u);
  EXPECT_EQ(d.client_ids(), (std::vector<ClientId>{7, 3}));
}

TEST(FederatedDataset, DuplicateClientThrows) {
  FederatedDataset d;
  d.add_client({1, {}});
  EXPECT_THROW(d.add_client({1, {}}), util::CheckError);
}

TEST(FederatedDataset, AppendCreatesOrExtends) {
  FederatedDataset d;
  d.append(5, {labeled(1.0f)});
  d.append(5, {labeled(0.0f), labeled(0.0f)});
  EXPECT_EQ(d.client(5).size(), 3u);
}

TEST(FederatedDataset, UnknownClientThrows) {
  FederatedDataset d;
  EXPECT_THROW(d.client(42), util::CheckError);
}

TEST(FederatedDataset, ToCentralizedFlattens) {
  FederatedDataset d;
  d.add_client({1, {labeled(1.0f), labeled(0.0f)}});
  d.add_client({2, {labeled(1.0f)}});
  EXPECT_EQ(d.to_centralized().size(), 3u);
}

// ------------------------------------------------------------- Partitioning

TEST(ExecutorPartitioning, RoundRobinCoversAllClients) {
  FederatedDataset d;
  for (ClientId c = 0; c < 10; ++c) d.add_client({c, {}});
  auto parts = partition_round_robin(d, 3);
  EXPECT_EQ(parts.executor_count(), 3u);
  std::size_t total = 0;
  for (const auto& p : parts.partitions) total += p.size();
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(parts.executor_of(0), 0);
  EXPECT_EQ(parts.executor_of(4), 1);
  EXPECT_EQ(parts.executor_of(99), -1);
}

TEST(ExecutorPartitioning, BalancedEvensOutSkewedLoads) {
  util::Rng rng(1);
  FederatedDataset d;
  // One huge client plus many small ones.
  d.add_client({0, std::vector<ml::Example>(1000, labeled(0.0f))});
  for (ClientId c = 1; c <= 20; ++c)
    d.add_client({c, std::vector<ml::Example>(50, labeled(0.0f))});
  auto parts = partition_balanced(d, 2);
  std::size_t load0 = 0, load1 = 0;
  for (ClientId c : parts.partitions[0]) load0 += d.client(c).size();
  for (ClientId c : parts.partitions[1]) load1 += d.client(c).size();
  // Round-robin would put ~1500 vs ~500; balanced should be within 20%.
  double ratio = static_cast<double>(std::max(load0, load1)) /
                 static_cast<double>(std::min(load0, load1));
  EXPECT_LT(ratio, 1.2);
}

TEST(NaturalPartition, GroupsByKeyAndAnonymizes) {
  std::vector<ml::Example> records(9);
  // Keys 100, 200, 300 repeating.
  auto key_of = [](std::size_t i) { return 100 * (i % 3 + 1); };
  FederatedDataset d = partition_natural(records, key_of);
  EXPECT_EQ(d.client_count(), 3u);
  for (const auto& c : d.clients()) {
    EXPECT_EQ(c.size(), 3u);
    EXPECT_LT(c.client_id, 3u);  // dense re-mapped ids, not raw keys
  }
}

class DirichletConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletConservationTest, EveryRecordAssignedExactlyOnce) {
  util::Rng rng(7);
  auto records = binary_records(2000, 0.3, rng);
  DirichletPartitionConfig cfg;
  cfg.clients = 50;
  cfg.label_alpha = GetParam();
  FederatedDataset d = partition_dirichlet(records, cfg, rng);
  EXPECT_EQ(d.example_count(), records.size());
  EXPECT_LE(d.client_count(), 50u);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, DirichletConservationTest,
                         ::testing::Values(0.05, 0.5, 5.0, 100.0));

TEST(DirichletPartition, SmallAlphaIncreasesLabelSkew) {
  util::Rng rng(11);
  auto records = binary_records(20000, 0.5, rng);
  auto label_skew = [&](double alpha) {
    util::Rng local(13);
    DirichletPartitionConfig cfg;
    cfg.clients = 40;
    cfg.label_alpha = alpha;
    FederatedDataset d = partition_dirichlet(records, cfg, local);
    // Mean |client positive rate - 0.5| over clients with enough data.
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& c : d.clients()) {
      if (c.size() < 20) continue;
      double pos = 0.0;
      for (const auto& e : c.examples) pos += e.label;
      total += std::abs(pos / static_cast<double>(c.size()) - 0.5);
      ++counted;
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
  };
  EXPECT_GT(label_skew(0.05), label_skew(50.0) + 0.1);
}

TEST(DirichletPartition, SmallQuantityAlphaConcentratesData) {
  util::Rng rng(17);
  auto records = binary_records(10000, 0.5, rng);
  auto top_share = [&](double qalpha) {
    util::Rng local(19);
    DirichletPartitionConfig cfg;
    cfg.clients = 50;
    cfg.quantity_alpha = qalpha;
    FederatedDataset d = partition_dirichlet(records, cfg, local);
    std::size_t biggest = 0;
    for (const auto& c : d.clients()) biggest = std::max(biggest, c.size());
    return static_cast<double>(biggest) / 10000.0;
  };
  EXPECT_GT(top_share(0.1), top_share(50.0) * 2.0);
}

TEST(Downsample, KeepsApproximateFraction) {
  util::Rng rng(23);
  FederatedDataset d;
  for (ClientId c = 0; c < 2000; ++c) d.add_client({c, {labeled(0.0f)}});
  FederatedDataset kept = downsample_clients(d, 0.25, rng);
  EXPECT_NEAR(static_cast<double>(kept.client_count()), 500.0, 60.0);
}

TEST(Downsample, FullFractionKeepsAll) {
  util::Rng rng(29);
  FederatedDataset d;
  d.add_client({1, {}});
  EXPECT_EQ(downsample_clients(d, 1.0, rng).client_count(), 1u);
  EXPECT_THROW(downsample_clients(d, 0.0, rng), util::CheckError);
}

// ------------------------------------------------------------ DatasetStats

TEST(DatasetStats, ComputesTable2Schema) {
  FederatedDataset d;
  d.add_client({1, {labeled(1.0f), labeled(0.0f), labeled(0.0f)}});
  d.add_client({2, {labeled(1.0f)}});
  DatasetStats s = compute_stats(d, "unit", 28);
  EXPECT_EQ(s.client_population, 2u);
  EXPECT_EQ(s.max_records, 3u);
  EXPECT_DOUBLE_EQ(s.avg_records, 2.0);
  EXPECT_DOUBLE_EQ(s.label_ratio, 0.5);
  EXPECT_EQ(s.lookback_days, 28);
  EXPECT_NE(s.to_string().find("unit"), std::string::npos);
}

TEST(DatasetStats, FromCountsMatchesDirect) {
  std::vector<std::uint32_t> counts = {1, 2, 3, 10};
  DatasetStats s = compute_stats_from_counts(counts, 0.06, "c");
  EXPECT_EQ(s.client_population, 4u);
  EXPECT_EQ(s.max_records, 10u);
  EXPECT_DOUBLE_EQ(s.avg_records, 4.0);
  EXPECT_DOUBLE_EQ(s.label_ratio, 0.06);
}

// ---------------------------------------------------------- Proxy generator

TEST(DataCatalog, VersionsAccumulate) {
  DataCatalog catalog;
  ProxyEntry e;
  e.dataset = std::make_shared<FederatedDataset>();
  EXPECT_EQ(catalog.put("ads", e), 1);
  EXPECT_EQ(catalog.put("ads", e), 2);
  EXPECT_EQ(catalog.version_count("ads"), 2u);
  EXPECT_EQ(catalog.latest("ads")->version, 2);
  EXPECT_EQ(catalog.get("ads", 1)->version, 1);
  EXPECT_FALSE(catalog.get("ads", 3).has_value());
  EXPECT_FALSE(catalog.latest("missing").has_value());
  EXPECT_EQ(catalog.names(), std::vector<std::string>{"ads"});
}

TEST(ProxyGenerator, NaturalStrategyRegistersWithStats) {
  util::Rng rng(31);
  DataCatalog catalog;
  ProxyGenerator gen(catalog);
  auto records = binary_records(300, 0.28, rng);
  ProxyConfig cfg;
  cfg.name = "ads-proxy";
  cfg.lookback_days = 90;
  auto entry = gen.generate(records, cfg, [](std::size_t i) { return i % 30; }, rng);
  EXPECT_EQ(entry.version, 1);
  EXPECT_EQ(entry.stats.client_population, 30u);
  EXPECT_NEAR(entry.stats.avg_records, 10.0, 1e-9);
  EXPECT_NEAR(entry.stats.label_ratio, 0.28, 0.1);
  EXPECT_TRUE(catalog.latest("ads-proxy").has_value());
}

TEST(ProxyGenerator, DirichletStrategyNeedsNoKey) {
  util::Rng rng(37);
  DataCatalog catalog;
  ProxyGenerator gen(catalog);
  auto records = binary_records(500, 0.5, rng);
  ProxyConfig cfg;
  cfg.name = "synthetic";
  cfg.strategy = PartitionStrategy::kDirichlet;
  cfg.dirichlet.clients = 25;
  auto entry = gen.generate(records, cfg, nullptr, rng);
  EXPECT_EQ(entry.dataset->example_count(), 500u);
}

TEST(ProxyGenerator, NaturalWithoutKeyThrows) {
  util::Rng rng(41);
  DataCatalog catalog;
  ProxyGenerator gen(catalog);
  auto records = binary_records(10, 0.5, rng);
  ProxyConfig cfg;
  EXPECT_THROW(gen.generate(records, cfg, nullptr, rng), util::CheckError);
}

// ------------------------------------------------------- Quantity profiles

class QuantityProfileTest
    : public ::testing::TestWithParam<std::tuple<double, double, std::uint32_t>> {};

TEST_P(QuantityProfileTest, MatchesTargetMoments) {
  auto [mean, stddev, cap] = GetParam();
  util::Rng rng(43);
  QuantityProfileConfig cfg;
  cfg.population = 200000;
  cfg.mean_records = mean;
  cfg.std_records = stddev;
  cfg.max_records = cap;
  auto counts = sample_quantity_profile(cfg, rng);
  ASSERT_EQ(counts.size(), cfg.population);
  util::RunningStats s;
  for (auto c : counts) {
    ASSERT_GE(c, 1u);
    ASSERT_LE(c, cap);
    s.add(static_cast<double>(c));
  }
  // Truncation (cap + floor at 1) shifts moments; allow generous tolerance.
  EXPECT_NEAR(s.mean(), mean, mean * 0.30 + 0.6);
  EXPECT_LT(s.max(), static_cast<double>(cap) + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Table2Profiles, QuantityProfileTest,
                         ::testing::Values(std::tuple{99.0, 667.0, 39731u},    // Dataset A
                                           std::tuple{184.0, 374.0, 103471u},  // Dataset B
                                           std::tuple{1.53, 1.47, 406u}));     // Dataset C

TEST(QuantityProfile, SuperuserTailRaisesMax) {
  util::Rng rng(47);
  QuantityProfileConfig base;
  base.population = 50000;
  base.mean_records = 20;
  base.std_records = 30;
  base.max_records = 1000000;
  auto plain = sample_quantity_profile(base, rng);
  QuantityProfileConfig with_tail = base;
  with_tail.superuser_fraction = 0.01;
  with_tail.superuser_alpha = 0.9;
  util::Rng rng2(47);
  auto tailed = sample_quantity_profile(with_tail, rng2);
  auto max_of = [](const std::vector<std::uint32_t>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  EXPECT_GT(max_of(tailed), max_of(plain) * 2);
}

}  // namespace
}  // namespace flint::data
