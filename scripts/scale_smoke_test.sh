#!/usr/bin/env bash
# Streaming-trace scale smoke (DESIGN.md §17), two gates:
#
#   1. Equivalence: at a small population with --chunk-clients forced low
#      enough that the streaming generator spills to disk and k-way-merges,
#      a `--mode stream` run and a `--mode materialized` run of bench_scale
#      must produce identical simulations — flint_compare at 0% tolerance on
#      every deterministic scalar (wall rates and RSS readings exempted: the
#      modes legitimately differ there; bounding RSS is the point).
#   2. Capacity: a >=100k-client streaming run must complete and
#      schema-validate. Sized so sanitizer lanes (which run full ctest) cover
#      the spill/merge/pool paths at real scale on every PR.
#
# Usage: scale_smoke_test.sh <bench_scale-binary> <source-dir> [python]
set -euo pipefail

bench=${1:?usage: scale_smoke_test.sh <bench_scale-binary> <source-dir> [python]}
src=${2:?missing source dir}
py=${3:-python3}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== streaming (spilled) vs materialized must be bit-identical =="
"$bench" --clients 2000 --days 3 --chunk-clients 256 --spill-dir "$work" \
         --mode stream --artifact-out "$work/stream.json" > /dev/null
"$bench" --clients 2000 --days 3 --chunk-clients 256 \
         --mode materialized --artifact-out "$work/materialized.json" > /dev/null
"$py" "$src/tools/validate_trace.py" --artifact "$work/stream.json" \
                                     --artifact "$work/materialized.json"
"$py" "$src/tools/flint_compare.py" "$work/stream.json" "$work/materialized.json" \
      --default-rel 0 \
      --threshold "scalars.rate.=1.0" \
      --threshold "scalars.rss.=1.0"

echo "== leftover spill directories would leak a temp file per run =="
leftovers=$(find "$work" -maxdepth 1 -name 'flint-sessions-*' | wc -l)
if [ "$leftovers" -ne 0 ]; then
  echo "spill directories not cleaned up:" >&2
  find "$work" -maxdepth 1 -name 'flint-sessions-*' >&2
  exit 1
fi

echo "== >=100k-client streaming run must complete =="
"$bench" --clients 100000 --spill-dir "$work" \
         --artifact-out "$work/scale100k.json" > /dev/null
"$py" "$src/tools/validate_trace.py" --artifact "$work/scale100k.json"

echo "scale smoke: OK"
