#!/usr/bin/env bash
# Kill-and-resume e2e (DESIGN.md §12). For each algo in {fedavg, fedbuff} and
# each thread count in {1, 8}:
#
#   1. reference: run crash_resume_driver uninterrupted (checkpoints on,
#      deterministic executor faults injected) and keep its artifact
#   2. crash: run the same config with --abort-after-round (a non-cadence
#      round, so the newest checkpoint is strictly older than the crash) and
#      require exit code 137 — _Exit, no destructors, like a SIGKILL
#   3. resume: relaunch with --resume; must exit 0, report the expected
#      resumed_from_round / resume_count, and produce an artifact that
#      matches the reference at ZERO tolerance (including the 64-bit
#      final-parameter fingerprint carried in the scalars section)
#
# Usage: crash_resume_test.sh <driver-binary> <source-dir> [python]
set -euo pipefail

driver=${1:?usage: crash_resume_test.sh <driver-binary> <source-dir> [python]}
src=${2:?missing source dir}
py=${3:-python3}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

ROUNDS=8
CKPT_EVERY=2
ABORT=5   # not a cadence multiple: resume must restart from round 4

for algo in fedavg fedbuff; do
  for threads in 1 8; do
    case="$algo-t$threads"
    echo "== $case: uninterrupted reference =="
    "$driver" --algo "$algo" --rounds "$ROUNDS" --threads "$threads" --faults \
      --checkpoint-dir "$work/$case-ref-ckpt" --checkpoint-every "$CKPT_EVERY" \
      --artifact-out "$work/$case-ref.json"

    echo "== $case: crash after round $ABORT =="
    rc=0
    "$driver" --algo "$algo" --rounds "$ROUNDS" --threads "$threads" --faults \
      --checkpoint-dir "$work/$case-ckpt" --checkpoint-every "$CKPT_EVERY" \
      --abort-after-round "$ABORT" || rc=$?
    if [ "$rc" -ne 137 ]; then
      echo "FAIL: $case crash run exited $rc, expected 137" >&2
      exit 1
    fi

    echo "== $case: resume and finish =="
    "$driver" --algo "$algo" --rounds "$ROUNDS" --threads "$threads" --faults \
      --checkpoint-dir "$work/$case-ckpt" --checkpoint-every "$CKPT_EVERY" \
      --resume --artifact-out "$work/$case-resumed.json" \
      | tee "$work/$case-resumed.log"
    grep -q "resumed_from_round=4 resume_count=1" "$work/$case-resumed.log" || {
      echo "FAIL: $case resume did not restart from round 4" >&2
      exit 1
    }

    echo "== $case: schema-validate both artifacts =="
    "$py" "$src/tools/validate_trace.py" --artifact "$work/$case-ref.json" \
                                         --artifact "$work/$case-resumed.json"

    echo "== $case: resumed run must match the reference bit-for-bit =="
    "$py" "$src/tools/flint_compare.py" --default-rel 0 \
      "$work/$case-ref.json" "$work/$case-resumed.json"
  done
done

echo "crash_resume_test: OK"
