#!/usr/bin/env bash
# Compression-on-the-wire e2e (DESIGN.md §16). Runs the quickstart twice on
# the unix transport with two spawned executors — once with raw float32
# updates, once with --compression=int8 — and checks that the compression is
# real at the transport level, not just a config flag:
#
#   1. the executors' shipped `rpc.bytes_sent{executor=N}` counters shrink to
#      under 30% of the f32 run's (int8 payloads are ~1/4 the bytes, so the
#      30% bound holds with framing + heartbeat overhead on top)
#   2. the int8 run ships a positive `rpc.bytes_saved_compression` counter
#      and the f32 run ships none
#   3. both runs finish with a real model (final AUPR present in both
#      artifacts) — compression must not break the run itself
#
# Usage: compression_wire_test.sh <quickstart-binary> <executor-binary> <source-dir> [python]
set -euo pipefail

quickstart=$(readlink -f "${1:?usage: compression_wire_test.sh <quickstart-binary> <executor-binary> <source-dir> [python]}")
executor=$(readlink -f "${2:?missing executor binary}")
src=$(readlink -f "${3:?missing source dir}")
py=${4:-python3}

work=$(mktemp -d "${TMPDIR:-/tmp}/flint_compression_wire.XXXXXX")
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/rpc_f32" "$work/rpc_int8"
cd "$work"

run() { # name compression rpc-dir
  "$quickstart" --transport unix --rpc-executors 2 \
    --executor-bin "$executor" --rpc-dir "$work/$3" \
    --compression "$2" \
    --metrics-out "$work/metrics_$1.jsonl" \
    --artifact-out "$work/artifact_$1.json" > "quickstart_$1.out"
}

echo "== f32 reference run (unix transport, 2 executors) =="
run f32 none rpc_f32
echo "== int8 run =="
run int8 int8 rpc_int8

echo "== executor-side rpc.bytes_sent shrinks below 30% =="
"$py" - "$work/artifact_f32.json" "$work/artifact_int8.json" <<'EOF'
import json, sys

def series(path):
    with open(path, encoding="utf-8") as f:
        return {s["series"]: s.get("value", 0.0)
                for s in json.load(f).get("telemetry", [])}

def executor_sum(samples, name):
    return sum(v for k, v in samples.items()
               if k.startswith(name + "{executor="))

f32, int8 = series(sys.argv[1]), series(sys.argv[2])
sent_f32 = executor_sum(f32, "rpc.bytes_sent")
sent_int8 = executor_sum(int8, "rpc.bytes_sent")
if sent_f32 <= 0:
    sys.exit("FAIL: f32 run shipped no executor rpc.bytes_sent series")
ratio = sent_int8 / sent_f32
print(f"executor bytes_sent: f32={sent_f32:.0f} int8={sent_int8:.0f} "
      f"ratio={ratio:.3f}")
if ratio >= 0.30:
    sys.exit(f"FAIL: int8 executor bytes_sent is {ratio:.1%} of f32 (need < 30%)")

saved_f32 = executor_sum(f32, "rpc.bytes_saved_compression")
saved_int8 = executor_sum(int8, "rpc.bytes_saved_compression")
print(f"bytes_saved_compression: f32={saved_f32:.0f} int8={saved_int8:.0f}")
if saved_int8 <= 0:
    sys.exit("FAIL: int8 run shipped no positive rpc.bytes_saved_compression")
if saved_f32 != 0:
    sys.exit("FAIL: f32 run claims compression savings")
# The savings counter must reconcile with the observed shrinkage: savings
# cannot exceed what actually left the wire relative to the f32 run.
if saved_int8 < sent_f32 - sent_int8 - 0.5 * sent_f32:
    sys.exit("FAIL: bytes_saved_compression implausibly small vs observed shrinkage")
EOF

echo "== both runs produced a real model =="
for name in f32 int8; do
  "$py" - "$work/artifact_$name.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    art = json.load(f)
if art["model"]["rounds"] <= 0 or art["model"]["final_metric"] <= 0:
    sys.exit(f"FAIL: {sys.argv[1]} has no trained model")
EOF
done

echo "compression_wire_test: OK"
