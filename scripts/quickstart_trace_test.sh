#!/usr/bin/env bash
# End-to-end observability gate: run the quickstart example with profiling
# enabled in a scratch directory, then validate the emitted Chrome trace and
# metrics JSONL against the trace-event schema and the minimum series set the
# instrumentation sweep guarantees. Registered as the `quickstart_trace`
# ctest entry.
#
# Usage: scripts/quickstart_trace_test.sh <quickstart-binary> [python3]
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
QUICKSTART="${1:?usage: quickstart_trace_test.sh <quickstart-binary> [python3]}"
PYTHON="${2:-python3}"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/flint_quickstart_trace.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$QUICKSTART" --trace-out trace.json --metrics-out metrics.jsonl > quickstart.out

"$PYTHON" "$REPO/tools/validate_trace.py" \
  --trace trace.json --metrics metrics.jsonl --min-series 10 \
  --require sim.queue_depth \
  --require sim.pick_latency_us \
  --require fl.staleness \
  --require feature.cache.hits \
  --require feature.cache.misses \
  --require store.checkpoint_write_us

echo "quickstart_trace_test: OK"
