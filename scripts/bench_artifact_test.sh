#!/usr/bin/env bash
# End-to-end check of the bench artifact regression pipeline:
#
#   1. run a (fast, seeded) bench binary twice with --artifact-out
#   2. both artifacts must pass tools/validate_trace.py --artifact
#   3. flint_compare.py must accept the pair at the tight default tolerance
#      (same binary + same seed reproduces bit-near-identically)
#   4. a synthetically perturbed copy must make flint_compare.py exit nonzero
#
# Usage: bench_artifact_test.sh <bench-binary> <source-dir> [python]
set -euo pipefail

bench=${1:?usage: bench_artifact_test.sh <bench-binary> <source-dir> [python]}
src=${2:?missing source dir}
py=${3:-python3}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== run bench twice =="
"$bench" --artifact-out "$work/run1.json" > /dev/null
"$bench" --artifact-out "$work/run2.json" > /dev/null

echo "== schema-validate both artifacts =="
"$py" "$src/tools/validate_trace.py" --artifact "$work/run1.json" \
                                     --artifact "$work/run2.json"

echo "== same-seed reruns must compare clean =="
"$py" "$src/tools/flint_compare.py" "$work/run1.json" "$work/run2.json"

echo "== a perturbed artifact must be flagged =="
"$py" - "$work/run1.json" "$work/perturbed.json" <<'PYEOF'
import json, sys

with open(sys.argv[1], encoding="utf-8") as f:
    doc = json.load(f)

# Nudge the first numeric leaf in a compared section by 7% — far beyond any
# same-machine tolerance, small enough to look like a plausible regression.
def perturb(node):
    if isinstance(node, dict):
        for key in node:
            if isinstance(node[key], (int, float)) and not isinstance(node[key], bool):
                node[key] = node[key] * 1.07 + 0.07
                return True
            if perturb(node[key]):
                return True
    elif isinstance(node, list):
        for item in node:
            if perturb(item):
                return True
    return False

for section in ("scalars", "system", "model"):
    if section in doc and perturb(doc[section]):
        break
else:
    sys.exit("perturb: no numeric leaf found to perturb")

with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(doc, f)
PYEOF

if "$py" "$src/tools/flint_compare.py" "$work/run1.json" "$work/perturbed.json" \
      > /dev/null 2>&1; then
  echo "FAIL: flint_compare accepted a perturbed artifact" >&2
  exit 1
fi
echo "perturbation flagged as expected"
echo "bench_artifact_test: OK"
