#!/usr/bin/env bash
# One-shot static-analysis driver (DESIGN.md §13): runs the full stack in
# dependency order — lint rules and their self-test, the determinism
# analyzer's corpus self-test and its zero-findings gate over src/, then the
# Clang thread-safety build where a clang++ exists.
#
# Usage:
#   scripts/run_analysis.sh              # everything
#   scripts/run_analysis.sh --no-build   # skip the thread-safety build
#
# Exit codes: 0 all gates clean (a skipped thread-safety build still counts
# as clean — it is reported), 1 any gate failed.
set -uo pipefail

cd "$(dirname "$0")/.."

PYTHON="${PYTHON:-python3}"
RUN_BUILD=1
if [ "${1:-}" = "--no-build" ]; then
  RUN_BUILD=0
fi

failures=0
run_gate() {
  local name="$1"
  shift
  echo "== $name =="
  if "$@"; then
    echo "== $name: ok =="
  else
    echo "== $name: FAILED =="
    failures=$((failures + 1))
  fi
  echo
}

run_gate "flint_lint (src bench examples)" \
  "$PYTHON" tools/flint_lint.py src bench examples
run_gate "flint_lint self-test (lint_corpus)" \
  "$PYTHON" tools/flint_lint_test.py
run_gate "flint_analyze self-test (analyze_corpus)" \
  "$PYTHON" tools/flint_analyze.py --self-test
run_gate "flint_analyze (src)" \
  "$PYTHON" tools/flint_analyze.py src

if [ "$RUN_BUILD" -eq 1 ]; then
  echo "== thread-safety build =="
  scripts/run_thread_safety.sh
  rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "== thread-safety build: ok =="
  elif [ "$rc" -eq 77 ]; then
    echo "== thread-safety build: skipped (no clang++) =="
  else
    echo "== thread-safety build: FAILED =="
    failures=$((failures + 1))
  fi
  echo
fi

if [ "$failures" -ne 0 ]; then
  echo "run_analysis.sh: $failures gate(s) FAILED"
  exit 1
fi
echo "run_analysis.sh: all gates clean"
