#!/usr/bin/env bash
# Build FLINT under each sanitizer profile and run the ctest suite.
#
# Usage:
#   scripts/run_sanitizers.sh                 # asan+ubsan and tsan (the CI set)
#   scripts/run_sanitizers.sh address         # one specific profile
#   scripts/run_sanitizers.sh --all           # address, undefined, thread, address+undefined
#   scripts/run_sanitizers.sh --fast thread   # tsan, threaded tests only
#   scripts/run_sanitizers.sh --scalar ...    # pin ml kernels to the scalar
#                                             # path (FLINT_KERNELS=scalar) so
#                                             # sanitizers cover the reference
#                                             # kernels, not just the SIMD ones
#
# Each profile builds into build-<profile>/ so the instrumented trees never
# pollute the primary build/ directory.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
PROFILES=()

for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --scalar) export FLINT_KERNELS=scalar ;;
    --all) PROFILES=(address undefined thread "address+undefined") ;;
    address|undefined|thread|address+undefined|asan+ubsan) PROFILES+=("$arg") ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [ "${#PROFILES[@]}" -eq 0 ]; then
  PROFILES=("address+undefined" thread)
fi

# Make sanitizer findings fatal and reports deterministic.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0:detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

status=0
for profile in "${PROFILES[@]}"; do
  dir="build-${profile//+/-}"
  dir="${dir//address-undefined/asan-ubsan}"  # match the CMakePresets.json name
  echo "=== sanitizer profile: ${profile} (${dir}) ==="
  cmake -B "$dir" -S . -DFLINT_SANITIZE="$profile" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    > "$dir.configure.log" 2>&1 || { cat "$dir.configure.log"; exit 1; }

  ctest_args=(--output-on-failure -j "$JOBS")
  if [ "$FAST" -eq 1 ] && [ "$profile" = "thread" ]; then
    # Threaded smoke only: skip the serial bulk of the suite under TSan.
    # rpc_test rides along in every lane: the frame-corruption matrix wants
    # ASan/UBSan eyes on the decoder, and the leader/executor loopback tests
    # are genuinely multi-threaded (TSan).
    cmake --build "$dir" -j "$JOBS" --target concurrency_smoke_test fl_fedbuff_test store_test obs_test \
      util_thread_pool_test parallel_determinism_test fl_resume_test rpc_test
    ctest_args+=(-R 'Concurrency|FedBuff|Checkpoint|Obs|ThreadPool|ParallelDeterminism|CrashResume|Frame|Messages|Loopback|UnixSocket|Tcp|LeaderExecutor')
  else
    cmake --build "$dir" -j "$JOBS"
  fi

  if (cd "$dir" && ctest "${ctest_args[@]}"); then
    echo "=== ${profile}: PASS ==="
  else
    echo "=== ${profile}: FAIL ==="
    status=1
  fi
done

exit "$status"
