#!/usr/bin/env bash
# Executor-fault e2e (DESIGN.md §14). For each algo in {fedavg, fedbuff}:
#
#   1. reference: run crash_resume_driver on the in-process loopback
#      transport (2 executors on pool threads, full wire encode/decode) and
#      keep its artifact
#   2. fault: run the same config over --transport=unix with 2 spawned
#      flint_executor processes, SIGKILLing executor child 0 after round 2
#      mid-run; the leader must see EOF, re-dispatch the dead executor's
#      outstanding leases to the survivor in stamp order, and finish
#   3. compare: the faulted multi-process artifact must match the loopback
#      reference at ZERO tolerance (including the 64-bit final-parameter
#      fingerprint carried in the scalars section) — a lease is a pure
#      function of its payload, so recovery is invisible in the results
#
# Usage: rpc_fault_test.sh <driver-binary> <executor-binary> <source-dir> [python]
set -euo pipefail

driver=${1:?usage: rpc_fault_test.sh <driver-binary> <executor-binary> <source-dir> [python]}
executor=${2:?missing executor binary}
src=${3:?missing source dir}
py=${4:-python3}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

ROUNDS=6
KILL_AFTER=2

for algo in fedavg fedbuff; do
  echo "== $algo: loopback reference (2 in-process executors) =="
  "$driver" --algo "$algo" --rounds "$ROUNDS" \
    --transport loopback --rpc-executors 2 \
    --artifact-out "$work/$algo-ref.json"

  echo "== $algo: unix transport, SIGKILL executor 0 after round $KILL_AFTER =="
  "$driver" --algo "$algo" --rounds "$ROUNDS" \
    --transport unix --rpc-executors 2 \
    --executor-bin "$executor" --rpc-dir "$work" \
    --kill-executor-after-round "$KILL_AFTER" \
    --artifact-out "$work/$algo-fault.json" \
    | tee "$work/$algo-fault.log"
  grep -q "SIGKILLing executor 0" "$work/$algo-fault.log" || {
    echo "FAIL: $algo fault run never killed its executor" >&2
    exit 1
  }

  echo "== $algo: schema-validate both artifacts =="
  "$py" "$src/tools/validate_trace.py" --artifact "$work/$algo-ref.json" \
                                       --artifact "$work/$algo-fault.json"

  echo "== $algo: faulted run must match the reference bit-for-bit =="
  "$py" "$src/tools/flint_compare.py" --default-rel 0 \
    "$work/$algo-ref.json" "$work/$algo-fault.json"
done

echo "rpc_fault_test: OK"
