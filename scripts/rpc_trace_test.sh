#!/usr/bin/env bash
# Distributed-telemetry e2e (DESIGN.md §15). Runs the quickstart on the unix
# transport with two spawned executors and every telemetry surface on, then
# checks the whole observability pipeline:
#
#   1. one Chrome trace per process (leader + both executors) lands in the
#      --trace-out directory
#   2. tools/flint_trace_merge.py folds them into a single cross-process
#      trace that passes validate_trace.py --merged (unique process tracks,
#      leader + executor roles, every rpc.lease_execute span parented to an
#      rpc.dispatch span, clock-aligned monotone timestamps)
#   3. the live status stream is valid JSONL and flint_top.py can render it,
#      showing both executors alive
#   4. the leader's run artifact carries merged `{executor=N}`-labeled series
#      shipped over heartbeats
#   5. telemetry is invisible in the results: the artifact matches a
#      telemetry-off in-process reference at ZERO tolerance with the same
#      config fingerprint
#
# Usage: rpc_trace_test.sh <quickstart-binary> <executor-binary> <source-dir> [python]
set -euo pipefail

quickstart=$(readlink -f "${1:?usage: rpc_trace_test.sh <quickstart-binary> <executor-binary> <source-dir> [python]}")
executor=$(readlink -f "${2:?missing executor binary}")
src=$(readlink -f "${3:?missing source dir}")
py=${4:-python3}

work=$(mktemp -d "${TMPDIR:-/tmp}/flint_rpc_trace.XXXXXX")
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/rpc" "$work/trace"
cd "$work"

echo "== unix transport, 2 executors, full telemetry =="
"$quickstart" --transport unix --rpc-executors 2 \
  --executor-bin "$executor" --rpc-dir "$work/rpc" \
  --trace-out "$work/trace" --status-out "$work/status.jsonl" \
  --metrics-out "$work/metrics.jsonl" \
  --artifact-out "$work/artifact_unix.json" > quickstart_unix.out

echo "== per-process traces present =="
for f in leader executor-0 executor-1; do
  test -s "$work/trace/$f.trace.json" || {
    echo "FAIL: missing per-process trace $f.trace.json" >&2
    exit 1
  }
done

echo "== merge and validate the cross-process trace =="
"$py" "$src/tools/flint_trace_merge.py" --dir "$work/trace"
"$py" "$src/tools/validate_trace.py" --trace "$work/trace/merged.trace.json" --merged
grep -q '"leader wall clock"' "$work/trace/merged.trace.json" || {
  echo "FAIL: merged trace lost the leader track" >&2
  exit 1
}

echo "== live status stream renders =="
"$py" "$src/tools/flint_top.py" --status "$work/status.jsonl" --once \
  | tee "$work/top.out"
grep -q "2 alive" "$work/top.out" || {
  echo "FAIL: flint_top does not show both executors alive" >&2
  exit 1
}

echo "== artifact carries merged executor-labeled series =="
grep -q "executor=" "$work/artifact_unix.json" || {
  echo "FAIL: artifact telemetry has no {executor=N} series" >&2
  exit 1
}
"$py" "$src/tools/validate_trace.py" --artifact "$work/artifact_unix.json"

echo "== telemetry-off in-process reference matches bit-for-bit =="
"$quickstart" --artifact-out "$work/artifact_ref.json" > quickstart_ref.out
"$py" "$src/tools/flint_compare.py" --require-same-config --ignore-telemetry \
  --default-rel 0 "$work/artifact_ref.json" "$work/artifact_unix.json"

echo "rpc_trace_test: OK"
