#!/usr/bin/env bash
# Fast ThreadSanitizer smoke: compiles tools/tsan_smoke.cpp plus the
# checkpoint, obs, and thread-pool TUs directly (no cmake tree) and runs it.
# Seconds, not minutes — suitable as a ctest entry. For the full threaded
# test set under TSan use scripts/run_sanitizers.sh thread [--fast].
#
# Usage: scripts/tsan_smoke.sh [output-binary-path]
# Exit: 0 clean (or TSan unsupported by the compiler — reported, skipped),
# nonzero on a data race or smoke failure.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-build/tsan_smoke_bin}"
CXX="${CXX:-g++}"
mkdir -p "$(dirname "$OUT")"

if ! "$CXX" -fsanitize=thread -pthread -x c++ -std=c++20 -o /dev/null - \
    <<< 'int main(){}' 2> /dev/null; then
  echo "tsan_smoke.sh: $CXX does not support -fsanitize=thread — skipping." >&2
  exit 0
fi

"$CXX" -std=c++20 -O1 -g -fsanitize=thread -fno-omit-frame-pointer -pthread \
  -I src tools/tsan_smoke.cpp src/flint/store/checkpoint.cpp \
  src/flint/obs/metrics.cpp src/flint/obs/trace.cpp src/flint/obs/telemetry.cpp \
  src/flint/obs/status.cpp \
  src/flint/util/thread_pool.cpp src/flint/util/crc32.cpp src/flint/util/logging.cpp \
  -o "$OUT"

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" "$OUT"
