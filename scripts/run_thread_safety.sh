#!/usr/bin/env bash
# Clang thread-safety analysis gate: configure + build the whole tree with
# -Wthread-safety -Werror=thread-safety over the capability annotations in
# src/flint/util/thread_annotations.h (FLINT_THREAD_SAFETY=ON profile).
#
# Usage:
#   scripts/run_thread_safety.sh            # build-threadsafety/ out of tree
#   BUILD_DIR=out scripts/run_thread_safety.sh
#
# Exit codes: 0 clean, 77 skipped (no clang++ on PATH — the annotations are
# no-ops under GCC, so building with GCC would check nothing), anything else
# a configure/build failure, including thread-safety diagnostics (fatal via
# -Werror=thread-safety). ctest registers this with SKIP_RETURN_CODE 77 so
# gcc-only containers report SKIP rather than a false PASS.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-threadsafety}"
JOBS="${JOBS:-$(nproc)}"

CLANGXX="$(command -v clang++ || true)"
if [ -z "$CLANGXX" ]; then
  # Accept versioned binaries (clang++-18 etc.), newest first.
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang++-$v" > /dev/null 2>&1; then
      CLANGXX="clang++-$v"
      break
    fi
  done
fi
if [ -z "$CLANGXX" ]; then
  echo "run_thread_safety.sh: clang++ not found on PATH — skipping thread-safety gate" >&2
  echo "run_thread_safety.sh: (the annotations compile away under GCC; install clang to enable)" >&2
  exit 77
fi

echo "run_thread_safety.sh: $CLANGXX with -Wthread-safety -Werror=thread-safety"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DFLINT_THREAD_SAFETY=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
echo "run_thread_safety.sh: clean"
