#!/usr/bin/env bash
# clang-tidy gate over src/ using the compile database.
#
# Usage:
#   scripts/run_tidy.sh                # tidy everything under src/
#   scripts/run_tidy.sh src/flint/sim  # tidy one subtree
#
# Exit codes: 0 clean (or clang-tidy unavailable — reported, gated, skipped),
# 1 findings, 2 setup error. The container this repo builds in ships only gcc;
# the gate degrades to a no-op there and runs for real in environments (CI
# images, dev boxes) that have clang-tidy installed.
set -euo pipefail

cd "$(dirname "$0")/.."

TARGET="${1:-src}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  # Accept versioned binaries (clang-tidy-18 etc.), newest first.
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-$v" > /dev/null 2>&1; then
      TIDY="clang-tidy-$v"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_tidy.sh: clang-tidy not found on PATH — skipping tidy gate (install clang-tidy to enable)." >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: $BUILD_DIR/compile_commands.json missing; configuring..." >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 2
fi

mapfile -t FILES < <(find "$TARGET" -name '*.cpp' | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_tidy.sh: no .cpp files under $TARGET" >&2
  exit 2
fi

echo "run_tidy.sh: $TIDY over ${#FILES[@]} files ($TARGET)"
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" -quiet "${FILES[@]}"
else
  status=0
  for f in "${FILES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
  done
  exit "$status"
fi
