// Table 3 reproduction: projected training-time speedup of async FedBuff
// over sync FedAvg for three workloads, plus client tasks started and total
// client computation.
//
// Paper:                    TASK A     TASK B     TASK C
//   FedBuff speed-up        1.2x       6x         2x
//   client tasks started    48.8k      32.3k      610k
//   client computation      7.5 hrs    6.8 days   25.9 days
//
// Mechanism being reproduced (§3.4): sync parallelism is structurally capped
// at cohort x over-commitment and every round waits for the cohort-th
// completion, while async keeps `max_concurrency` devices busy and tolerates
// stale updates. The async advantage therefore grows with the spread of the
// client task durations: Task A has tight durations (1.2x), Task B is
// heavy-tailed (6x), Task C sits in between (2x).
#include "bench_helpers.h"

namespace {

using namespace flint;

struct TaskSpec {
  const char* name;
  std::size_t clients;
  data::QuantityProfileConfig quantity;  ///< |D_k| distribution
  int local_epochs;                      ///< E in the duration formula
  double per_example_s;                  ///< fleet-mean training time / example
  double jitter_sigma;                   ///< device run-to-run spread
  std::uint64_t update_bytes;            ///< M
  std::uint64_t target_aggregations;     ///< convergence proxy
  std::size_t cohort;                    ///< sync cohort = async buffer
  std::size_t async_concurrency;
  std::uint64_t max_staleness;
  const char* paper_speedup;
  const char* paper_tasks;
  const char* paper_compute;
};

struct ModeResult {
  double duration_s = 0.0;
  std::uint64_t tasks_started = 0;
  double compute_s = 0.0;
};

ModeResult run_mode(const TaskSpec& spec, bool async, std::size_t threads,
                    const std::vector<std::uint32_t>& counts,
                    const device::AvailabilityTrace& trace,
                    const device::DeviceCatalog& catalog, const net::BandwidthModel& bandwidth) {
  fl::RunInputs inputs;
  inputs.threads = threads;
  inputs.model_free = true;
  inputs.client_example_counts = &counts;
  inputs.trace = &trace;
  inputs.catalog = &catalog;
  inputs.bandwidth = &bandwidth;
  inputs.duration.base_time_per_example_s = spec.per_example_s;
  inputs.duration.local_epochs = spec.local_epochs;
  inputs.duration.jitter_sigma = spec.jitter_sigma;
  inputs.duration.update_bytes = spec.update_bytes;
  inputs.max_rounds = spec.target_aggregations;
  inputs.reparticipation_gap_s = 1800.0;
  inputs.seed = 7;

  ModeResult out;
  if (async) {
    fl::AsyncConfig cfg;
    cfg.inputs = inputs;
    cfg.buffer_size = spec.cohort;
    cfg.max_concurrency = spec.async_concurrency;
    cfg.max_staleness = spec.max_staleness;
    fl::RunResult r = fl::run_fedbuff(cfg);
    out = {r.virtual_duration_s, r.metrics.tasks_started(), r.metrics.client_compute_s()};
  } else {
    fl::SyncConfig cfg;
    cfg.inputs = inputs;
    cfg.cohort_size = spec.cohort;
    cfg.overcommit = 1.3;
    cfg.round_deadline_s = 4.0 * 3600.0;
    fl::RunResult r = fl::run_fedavg(cfg);
    out = {r.virtual_duration_s, r.metrics.tasks_started(), r.metrics.client_compute_s()};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry profiling(argc, argv);
  bench::BenchArtifact artifact(argc, argv, "table3_fedbuff_speedup");
  std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_header("Table 3: Projected FedBuff speedup over FedAvg",
                      "Model-free system simulation; convergence proxy = fixed "
                      "aggregation count per task; async concurrency exceeds the "
                      "sync cohort's structural parallelism cap");

  // Task A: ads-like. Tight task durations (narrow quantity spread, modest
  // jitter) keep sync rounds close to the mean -> small async gain.
  // Task B: messaging-like. Heavy-tailed |D_k| makes sync rounds wait on
  // stragglers every round -> large async gain.
  // Task C: search-like. Tiny partitions, network-dominated durations with
  // Puffer-like bandwidth spread -> intermediate gain, huge task volume.
  std::vector<TaskSpec> tasks = {
      {"TASK A", 20'000,
       {.population = 20'000, .mean_records = 99, .std_records = 40, .max_records = 400},
       1, 61.81 / 5000.0, 0.10, 760'000, 2400, 20, 24, 40,
       "1.2x", "48.8k", "7.5 hrs"},
      {"TASK B", 20'000,
       {.population = 20'000, .mean_records = 184, .std_records = 900, .max_records = 40'000,
        .superuser_fraction = 0.01, .superuser_alpha = 1.0},
       7, 70.13 / 5000.0, 0.35, 1'560'000, 1600, 20, 150, 80,
       "6x", "32.3k", "6.8 days"},
      {"TASK C", 100'000,
       {.population = 100'000, .mean_records = 1.53, .std_records = 1.47, .max_records = 406},
       1, 2.4, 0.20, 380'000, 30'500, 20, 36, 50,
       "2x", "610k", "25.9 days"},
  };

  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  util::Rng rng(1003);

  util::Table t({"", "FEDBUFF SPEED-UP", "(paper)", "CLIENT TASKS STARTED", "(paper)",
                 "CLIENT COMPUTATION", "(paper)"});
  for (const auto& spec : tasks) {
    auto counts = data::sample_quantity_profile(spec.quantity, rng);
    // Long always-on windows: Table 3 isolates scheduling effects; the
    // availability interplay is Figure 8's subject.
    std::vector<device::AvailabilityWindow> windows;
    windows.reserve(spec.clients);
    for (std::size_t c = 0; c < spec.clients; ++c)
      windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});
    device::AvailabilityTrace trace(std::move(windows));

    ModeResult sync = run_mode(spec, /*async=*/false, threads, counts, trace, catalog, bandwidth);
    ModeResult async = run_mode(spec, /*async=*/true, threads, counts, trace, catalog, bandwidth);
    double speedup = sync.duration_s / async.duration_s;
    std::string key(spec.name);
    for (char& c : key)
      if (c == ' ') c = '_';
    artifact.add_scalar("speedup." + key, speedup);
    artifact.add_scalar("async_tasks_started." + key,
                        static_cast<double>(async.tasks_started));
    artifact.add_scalar("async_compute_s." + key, async.compute_s);

    char speed_buf[32];
    std::snprintf(speed_buf, sizeof(speed_buf), "%.1fx", speedup);
    t.add_row({spec.name, speed_buf, spec.paper_speedup,
               util::Table::count(static_cast<std::int64_t>(async.tasks_started)),
               spec.paper_tasks, bench::human_duration(async.compute_s), spec.paper_compute});

    std::cout << spec.name << ": sync " << bench::human_duration(sync.duration_s) << " ("
              << sync.tasks_started << " tasks) vs async "
              << bench::human_duration(async.duration_s) << " (" << async.tasks_started
              << " tasks)\n";
  }
  // --- Model-full section: actual local SGD under FedBuff, the workload the
  // parallel training runtime exists for. Wall time scales with --threads;
  // every simulated quantity (and the artifact's model/system sections) is
  // bit-identical at any thread count, which `tools/flint_compare.py` between
  // a --threads 1 and a --threads N artifact verifies.
  {
    bench::print_header("Model-full FedBuff (parallel training runtime)",
                        "Ads-like task, 400 clients, concurrency 32; wall time is the "
                        "only --threads-dependent output");
    util::Rng mf_rng(1003);
    data::SyntheticTaskConfig task_cfg;
    task_cfg.domain = data::Domain::kAds;
    task_cfg.clients = 400;
    // Sized so each client task carries real SGD work (~ms, not µs): with
    // sub-millisecond tasks the pool's dispatch overhead would swamp the
    // parallel win this section exists to measure.
    task_cfg.mean_records = 200;
    task_cfg.std_records = 150;
    task_cfg.max_records = 2000;
    task_cfg.dense_dim = 16;
    task_cfg.test_examples = 3000;
    data::FederatedTask task = data::make_synthetic_task(task_cfg, mf_rng);
    auto model = task.make_model(mf_rng);
    std::vector<device::AvailabilityWindow> windows;
    windows.reserve(task_cfg.clients);
    for (std::size_t c = 0; c < task_cfg.clients; ++c)
      windows.push_back({c, catalog.sample_device(mf_rng), 0.0, 1e10});
    device::AvailabilityTrace trace(std::move(windows));

    fl::AsyncConfig cfg;
    cfg.inputs.threads = threads;
    cfg.inputs.dataset = &task.train;
    cfg.inputs.dense_dim = task.batch_dense_dim();
    cfg.inputs.model_template = model.get();
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &catalog;
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.test = &task.test;
    cfg.inputs.domain = task.config.domain;
    cfg.inputs.local.loss = task.loss_kind();
    cfg.inputs.local.epochs = 3;
    cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
    cfg.inputs.max_rounds = 60;
    cfg.inputs.eval_every_rounds = 10;
    cfg.inputs.reparticipation_gap_s = 0.0;
    cfg.inputs.seed = 7;
    cfg.buffer_size = 10;
    cfg.max_concurrency = 32;
    // Opt-in crash-safety plumbing for the representative model-full run:
    // --checkpoint-dir enables periodic checkpoints, --resume restarts from
    // the newest one (bit-identical to an uninterrupted run, DESIGN.md §12).
    auto checkpoints = bench::wire_checkpoint_args(argc, argv, cfg.inputs);
    // --transport moves the local SGD onto rpc executors; the simulated
    // quantities (and the artifact) stay bit-identical, like --threads.
    auto rpc = bench::wire_rpc_args(argc, argv, cfg.inputs);

    auto wall_start = std::chrono::steady_clock::now();
    fl::RunResult r = fl::run_fedbuff(cfg);
    double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

    artifact.set_run(r, task.metric_name());
    artifact.add_scalar("model_full.final_metric", r.final_metric);
    artifact.add_scalar("model_full.virtual_duration_s", r.virtual_duration_s);
    artifact.add_scalar("model_full.tasks_started",
                        static_cast<double>(r.metrics.tasks_started()));
    artifact.add_scalar("model_full.rounds", static_cast<double>(r.rounds));
    artifact.add_scalar("model_full.train.wall_time_s", wall_s);
    std::cout << "  threads=" << threads << "  wall=" << util::Table::num(wall_s, 2)
              << "s  " << task.metric_name() << "=" << util::Table::num(r.final_metric, 4)
              << "  rounds=" << r.rounds << "  tasks=" << r.metrics.tasks_started() << "\n";
  }

  artifact.set_config_text("table3: model-free sync-vs-async, 3 workloads, seed 7/1003; "
                           "model-full fedbuff ads-400 seed 7");
  std::cout << "\n" << t.render();
  std::cout << "\nNote: client populations are scaled down from the paper's production\n"
               "universe (millions of devices) to keep this bench laptop-fast; the\n"
               "speed-up ratios, task ordering, and task counts are the reproduced\n"
               "quantities.\n";
  return 0;
}
