// Micro-kernel benchmarks (google-benchmark): throughput of the hot paths
// under FLINT's simulations — tensor products, embedding lookups, feature
// hashing, loss computation, local SGD steps, cache ops, and the event queue.
//
// Besides the google-benchmark section, main() runs a hand-timed sweep over
// the flint::ml::kernels table that emits per-kernel GB/s and GFLOP/s artifact
// leaves plus `speedup_vs_scalar` (active SIMD path vs. the honest-scalar
// reference), which is what the CI smoke-bench diff gates the ≥2× win on.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_helpers.h"
#include "flint/data/proxy_generator.h"
#include "flint/feature/feature_cache.h"
#include "flint/feature/feature_hashing.h"
#include "flint/fl/aggregator.h"
#include "flint/fl/trainer.h"
#include "flint/ml/kernels/kernels.h"
#include "flint/ml/loss.h"
#include "flint/ml/model.h"
#include "flint/sim/event_queue.h"
#include "flint/util/rng.h"

namespace {

using namespace flint;

void BM_TensorMatmul(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  ml::Tensor a(n, n), b(n, n);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ml::Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

void BM_EmbeddingBagForward(benchmark::State& state) {
  util::Rng rng(2);
  ml::EmbeddingBagLayer bag(10'000, 64);
  bag.init(rng);
  std::vector<std::vector<std::int32_t>> tokens(32);
  for (auto& t : tokens) {
    t.resize(16);
    for (auto& id : t) id = static_cast<std::int32_t>(rng.uniform_int(0, 9999));
  }
  for (auto _ : state) {
    ml::Tensor out = bag.forward(tokens);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 32 * 16);
}
BENCHMARK(BM_EmbeddingBagForward);

void BM_FeatureHashing(benchmark::State& state) {
  feature::FeatureHasher hasher(4096);
  std::vector<std::string> tokens;
  for (int i = 0; i < 256; ++i) tokens.push_back("feature:token:" + std::to_string(i));
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& t : tokens) acc += hasher.bucket(t);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FeatureHashing);

void BM_BceLoss(benchmark::State& state) {
  util::Rng rng(3);
  ml::Tensor logits(512, 1);
  std::vector<float> labels(512);
  for (float& v : logits.flat()) v = static_cast<float>(rng.normal());
  for (float& v : labels) v = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  for (auto _ : state) {
    auto r = ml::bce_with_logits(logits, labels);
    benchmark::DoNotOptimize(r.loss);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_BceLoss);

void BM_LocalTrainerStep(benchmark::State& state) {
  util::Rng rng(4);
  ml::FeedForwardConfig mcfg;
  mcfg.dense_dim = 16;
  mcfg.hidden = {32, 16};
  auto model = std::make_unique<ml::FeedForwardModel>(mcfg);
  model->init(rng);
  std::vector<float> params = model->get_flat_parameters();
  fl::LocalTrainer trainer(std::move(model), 16);
  std::vector<ml::Example> data(64);
  for (auto& e : data) {
    e.dense.resize(16);
    for (float& v : e.dense) v = static_cast<float>(rng.normal());
    e.label = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  }
  fl::LocalTrainConfig cfg;
  for (auto _ : state) {
    auto r = trainer.train(data, params, cfg);
    benchmark::DoNotOptimize(r.delta);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LocalTrainerStep);

void BM_FeatureCache(benchmark::State& state) {
  feature::FeatureCache cache(1 << 20);
  util::Rng rng(5);
  std::vector<float> value(16, 1.0f);
  for (int i = 0; i < 1000; ++i) cache.put("key" + std::to_string(i), value);
  for (auto _ : state) {
    auto v = cache.get("key" + std::to_string(rng.uniform_int(0, 1499)));  // ~2/3 hits
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureCache);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
      q.schedule(static_cast<double>((i * 7919) % 1000), [&fired] { ++fired; });
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_WeightedAccumulate(benchmark::State& state) {
  // The aggregation hot loop: every client update funnels through
  // UpdateAccumulator::add and each server step through weighted_mean +
  // apply_server_update. Dim matches real model parameter counts.
  auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<float>> deltas(16, std::vector<float>(dim));
  for (auto& d : deltas)
    for (float& v : d) v = static_cast<float>(rng.normal());
  std::vector<float> params(dim, 0.0f);
  fl::UpdateAccumulator acc(dim);
  for (auto _ : state) {
    acc.reset();
    for (std::size_t k = 0; k < deltas.size(); ++k)
      acc.add(deltas[k], 1.0 + static_cast<double>(k));
    std::vector<float> mean = acc.weighted_mean();
    fl::apply_server_update(params, mean, 0.1);
    benchmark::DoNotOptimize(params.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(deltas.size() * dim));
}
BENCHMARK(BM_WeightedAccumulate)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_QuantityProfile(benchmark::State& state) {
  util::Rng rng(6);
  data::QuantityProfileConfig cfg;
  cfg.population = 100'000;
  cfg.mean_records = 99;
  cfg.std_records = 667;
  cfg.max_records = 39'731;
  for (auto _ : state) {
    auto counts = data::sample_quantity_profile(cfg, rng);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_QuantityProfile);

// ---------------------------------------------------------------------------
// Hand-timed flint::ml::kernels sweep: per-kernel GB/s, GFLOP/s, and
// speedup_vs_scalar artifact leaves. Working sets are L1-resident (16 KB
// vectors, 64x64 matrices) so the numbers expose compute throughput — the
// quantity SIMD improves — rather than DRAM bandwidth.

/// Best-of-R time for `reps` calls of fn (minimum filters scheduler noise).
template <typename F>
double time_best_s(F&& fn, int reps, int rounds = 7) {
  double best = 1e30;
  for (int r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best / reps;
}

struct KernelCase {
  const char* name;
  double bytes;  ///< bytes touched per call (reads + writes)
  double flops;  ///< float ops per call
  int reps;      ///< calls per timing round
  void (*run)(const ml::kernels::KernelTable&);
};

constexpr std::size_t kVec = 4096;            // 16 KB of floats: L1-resident
constexpr std::size_t kMat = 64;              // 64x64 matmul operands
constexpr std::size_t kRows = 16, kDim = 64;  // gather/scatter shape

// Shared scratch for the kernel cases. Static so the case table can use
// plain function pointers; (re)initialized by run_kernel_sweep.
struct Scratch {
  std::vector<float> x, y, vel, noise;
  std::vector<double> dsum;
  std::vector<float> a, b, out;
  std::vector<float> table, rows;
  std::vector<std::int32_t> tokens;
};
Scratch& scratch() {
  static Scratch s;
  return s;
}

void reset_scratch() {
  util::Rng rng(11);
  Scratch& s = scratch();
  auto fill = [&rng](std::vector<float>& v, std::size_t n) {
    v.resize(n);
    for (float& f : v) f = static_cast<float>(rng.normal());
  };
  fill(s.x, kVec);
  fill(s.y, kVec);
  fill(s.vel, kVec);
  fill(s.noise, kVec);
  s.dsum.assign(kVec, 0.0);
  fill(s.a, kMat * kMat);
  fill(s.b, kMat * kMat);
  s.out.assign(kMat * kMat, 0.0f);
  fill(s.table, 1024 * kDim);
  fill(s.rows, kRows * kDim);
  s.tokens.resize(kRows);
  for (auto& t : s.tokens) t = static_cast<std::int32_t>(rng.uniform_int(0, 1023));
}

const KernelCase kKernelCases[] = {
    {"add", 3.0 * 4 * kVec, 1.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.add(scratch().y.data(), scratch().x.data(), kVec);
     }},
    {"axpy", 3.0 * 4 * kVec, 2.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.axpy(scratch().y.data(), scratch().x.data(), 0.25f, kVec);
     }},
    {"scale_add", 3.0 * 4 * kVec, 2.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.scale_add(scratch().y.data(), 0.999f, scratch().noise.data(), kVec);
     }},
    {"sgd_step", 3.0 * 4 * kVec, 3.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.sgd_step(scratch().y.data(), scratch().x.data(), 1e-4f, 1e-5f, kVec);
     }},
    {"sgd_momentum_step", 5.0 * 4 * kVec, 5.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.sgd_momentum_step(scratch().y.data(), scratch().x.data(), scratch().vel.data(),
                           1e-4f, 0.9f, 1e-5f, kVec);
     }},
    {"server_momentum_step", 5.0 * 4 * kVec, 4.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.server_momentum_step(scratch().y.data(), scratch().vel.data(), scratch().x.data(),
                              0.9f, 0.1f, kVec);
     }},
    {"weighted_accum", (8.0 + 8.0 + 4.0) * kVec, 2.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.weighted_accum(scratch().dsum.data(), scratch().x.data(), 1.5, kVec);
     }},
    {"mean_from_sums", (8.0 + 4.0) * kVec, 1.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       k.mean_from_sums(scratch().y.data(), scratch().dsum.data(), 0.125, kVec);
     }},
    {"max_abs", 4.0 * kVec, 1.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       benchmark::DoNotOptimize(k.max_abs(scratch().x.data(), kVec));
     }},
    {"sum_squares", 4.0 * kVec, 2.0 * kVec, 2000,
     [](const ml::kernels::KernelTable& k) {
       benchmark::DoNotOptimize(k.sum_squares(scratch().x.data(), kVec, 0.0));
     }},
    {"matmul", 3.0 * 4 * kMat * kMat, 2.0 * kMat * kMat * kMat, 50,
     [](const ml::kernels::KernelTable& k) {
       auto& s = scratch();
       std::fill(s.out.begin(), s.out.end(), 0.0f);
       k.matmul(s.a.data(), s.b.data(), s.out.data(), kMat, kMat, kMat);
     }},
    {"transposed_matmul", 3.0 * 4 * kMat * kMat, 2.0 * kMat * kMat * kMat, 50,
     [](const ml::kernels::KernelTable& k) {
       auto& s = scratch();
       std::fill(s.out.begin(), s.out.end(), 0.0f);
       k.transposed_matmul(s.a.data(), s.b.data(), s.out.data(), kMat, kMat, kMat);
     }},
    {"matmul_transposed", 3.0 * 4 * kMat * kMat, 2.0 * kMat * kMat * kMat, 50,
     [](const ml::kernels::KernelTable& k) {
       auto& s = scratch();
       k.matmul_transposed(s.a.data(), s.b.data(), s.out.data(), kMat, kMat, kMat);
     }},
    {"gather_mean_rows", 2.0 * 4 * kRows * kDim, 1.0 * kRows * kDim, 2000,
     [](const ml::kernels::KernelTable& k) {
       auto& s = scratch();
       std::fill(s.rows.begin(), s.rows.end(), 0.0f);
       for (std::size_t r = 0; r < kRows; ++r)
         k.gather_mean_rows(s.table.data(), kDim, s.tokens.data(), kRows, 1024,
                            s.rows.data() + r * kDim);
     }},
    {"scatter_add_rows", 3.0 * 4 * kRows * kDim, 2.0 * kRows * kDim, 2000,
     [](const ml::kernels::KernelTable& k) {
       auto& s = scratch();
       for (std::size_t r = 0; r < kRows; ++r)
         k.scatter_add_rows(s.table.data(), kDim, s.tokens.data(), kRows, 1024,
                            s.rows.data() + r * kDim, 0.0625f);
     }},
};

void run_kernel_sweep(flint::bench::BenchArtifact& artifact) {
  using ml::kernels::KernelPath;
  const KernelPath active = ml::kernels::active_path();
  const auto& active_table = ml::kernels::table_for(active);
  const auto& scalar_table = ml::kernels::table_for(KernelPath::kScalar);
  std::cout << "\nml::kernels sweep (active path: " << ml::kernels::path_name(active)
            << ", reference: scalar)\n";
  // Lets tools/check_kernel_speedup.py skip the >=2x gate on runs pinned to
  // --kernels=scalar, where every speedup is ~1.0 by construction.
  artifact.add_scalar("kernels.simd_active", active == KernelPath::kScalar ? 0.0 : 1.0);
  std::printf("  %-22s %10s %10s %12s\n", "kernel", "GB/s", "GFLOP/s", "vs scalar");
  for (const KernelCase& c : kKernelCases) {
    reset_scratch();
    c.run(scalar_table);  // warm both code and data
    double scalar_s = time_best_s([&] { c.run(scalar_table); }, c.reps);
    reset_scratch();
    c.run(active_table);
    double active_s = time_best_s([&] { c.run(active_table); }, c.reps);
    double gbps = c.bytes / active_s / 1e9;
    double gflops = c.flops / active_s / 1e9;
    double speedup = scalar_s / active_s;
    std::printf("  %-22s %10.2f %10.2f %11.2fx\n", c.name, gbps, gflops, speedup);
    std::string prefix = std::string("kernels.") + c.name;
    artifact.add_scalar(prefix + ".gbps", gbps);
    artifact.add_scalar(prefix + ".gflops", gflops);
    artifact.add_scalar(prefix + ".speedup_vs_scalar", speedup);
  }
}

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the binary also emits a run artifact: the
// --artifact-out and --kernels flags are consumed by BenchArtifact and hidden
// from google-benchmark's flag parser (which rejects flags it does not know).
int main(int argc, char** argv) {
  flint::bench::BenchArtifact artifact(argc, argv, "micro_kernels");
  artifact.set_config_text("micro_kernels: google-benchmark hot-path kernels");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && (std::strcmp(argv[i], "--artifact-out") == 0 ||
                         std::strcmp(argv[i], "--kernels") == 0)) {
      ++i;  // skip the flag and its value
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_kernel_sweep(artifact);
  return 0;
}
