// Micro-kernel benchmarks (google-benchmark): throughput of the hot paths
// under FLINT's simulations — tensor products, embedding lookups, feature
// hashing, loss computation, local SGD steps, cache ops, and the event queue.
#include <benchmark/benchmark.h>

#include "bench_helpers.h"
#include "flint/data/proxy_generator.h"
#include "flint/feature/feature_cache.h"
#include "flint/feature/feature_hashing.h"
#include "flint/fl/aggregator.h"
#include "flint/fl/trainer.h"
#include "flint/ml/loss.h"
#include "flint/ml/model.h"
#include "flint/sim/event_queue.h"
#include "flint/util/rng.h"

namespace {

using namespace flint;

void BM_TensorMatmul(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  ml::Tensor a(n, n), b(n, n);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ml::Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

void BM_EmbeddingBagForward(benchmark::State& state) {
  util::Rng rng(2);
  ml::EmbeddingBagLayer bag(10'000, 64);
  bag.init(rng);
  std::vector<std::vector<std::int32_t>> tokens(32);
  for (auto& t : tokens) {
    t.resize(16);
    for (auto& id : t) id = static_cast<std::int32_t>(rng.uniform_int(0, 9999));
  }
  for (auto _ : state) {
    ml::Tensor out = bag.forward(tokens);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 32 * 16);
}
BENCHMARK(BM_EmbeddingBagForward);

void BM_FeatureHashing(benchmark::State& state) {
  feature::FeatureHasher hasher(4096);
  std::vector<std::string> tokens;
  for (int i = 0; i < 256; ++i) tokens.push_back("feature:token:" + std::to_string(i));
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& t : tokens) acc += hasher.bucket(t);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FeatureHashing);

void BM_BceLoss(benchmark::State& state) {
  util::Rng rng(3);
  ml::Tensor logits(512, 1);
  std::vector<float> labels(512);
  for (float& v : logits.flat()) v = static_cast<float>(rng.normal());
  for (float& v : labels) v = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  for (auto _ : state) {
    auto r = ml::bce_with_logits(logits, labels);
    benchmark::DoNotOptimize(r.loss);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_BceLoss);

void BM_LocalTrainerStep(benchmark::State& state) {
  util::Rng rng(4);
  ml::FeedForwardConfig mcfg;
  mcfg.dense_dim = 16;
  mcfg.hidden = {32, 16};
  auto model = std::make_unique<ml::FeedForwardModel>(mcfg);
  model->init(rng);
  std::vector<float> params = model->get_flat_parameters();
  fl::LocalTrainer trainer(std::move(model), 16);
  std::vector<ml::Example> data(64);
  for (auto& e : data) {
    e.dense.resize(16);
    for (float& v : e.dense) v = static_cast<float>(rng.normal());
    e.label = rng.bernoulli(0.3) ? 1.0f : 0.0f;
  }
  fl::LocalTrainConfig cfg;
  for (auto _ : state) {
    auto r = trainer.train(data, params, cfg);
    benchmark::DoNotOptimize(r.delta);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LocalTrainerStep);

void BM_FeatureCache(benchmark::State& state) {
  feature::FeatureCache cache(1 << 20);
  util::Rng rng(5);
  std::vector<float> value(16, 1.0f);
  for (int i = 0; i < 1000; ++i) cache.put("key" + std::to_string(i), value);
  for (auto _ : state) {
    auto v = cache.get("key" + std::to_string(rng.uniform_int(0, 1499)));  // ~2/3 hits
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureCache);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
      q.schedule(static_cast<double>((i * 7919) % 1000), [&fired] { ++fired; });
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_WeightedAccumulate(benchmark::State& state) {
  // The aggregation hot loop: every client update funnels through
  // UpdateAccumulator::add and each server step through weighted_mean +
  // apply_server_update. Dim matches real model parameter counts.
  auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<float>> deltas(16, std::vector<float>(dim));
  for (auto& d : deltas)
    for (float& v : d) v = static_cast<float>(rng.normal());
  std::vector<float> params(dim, 0.0f);
  fl::UpdateAccumulator acc(dim);
  for (auto _ : state) {
    acc.reset();
    for (std::size_t k = 0; k < deltas.size(); ++k)
      acc.add(deltas[k], 1.0 + static_cast<double>(k));
    std::vector<float> mean = acc.weighted_mean();
    fl::apply_server_update(params, mean, 0.1);
    benchmark::DoNotOptimize(params.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(deltas.size() * dim));
}
BENCHMARK(BM_WeightedAccumulate)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_QuantityProfile(benchmark::State& state) {
  util::Rng rng(6);
  data::QuantityProfileConfig cfg;
  cfg.population = 100'000;
  cfg.mean_records = 99;
  cfg.std_records = 667;
  cfg.max_records = 39'731;
  for (auto _ : state) {
    auto counts = data::sample_quantity_profile(cfg, rng);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_QuantityProfile);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the binary also emits a run artifact: the
// --artifact-out flag is consumed here and hidden from google-benchmark's
// flag parser (which rejects flags it does not know).
int main(int argc, char** argv) {
  flint::bench::BenchArtifact artifact(argc, argv, "micro_kernels");
  artifact.set_config_text("micro_kernels: google-benchmark hot-path kernels");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--artifact-out") == 0) {
      ++i;  // skip the flag and its value
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
