// Ablations for the design choices DESIGN.md calls out:
//   (a) sync over-commitment factor: round duration vs wasted work;
//   (b) FedBuff staleness weighting on/off: final model quality;
//   (c) executor partitioning: round-robin vs balanced under quantity skew;
//   (d) feature hashing bucket count: storage vs collision rate (the §4.1
//       vocab-file vs hashing trade).
#include "bench_helpers.h"

#include "flint/data/partitioner.h"
#include "flint/feature/feature_hashing.h"
#include "flint/feature/vocab.h"
#include "flint/util/stats.h"

namespace {

using namespace flint;

// Set by main; the ablations feed their headline numbers into it.
bench::BenchArtifact* g_artifact = nullptr;
std::size_t g_threads = 1;  // --threads; wall-time only, never in config_text

void ablate_overcommit() {
  std::cout << util::banner("Ablation (a): FedAvg over-commitment factor");
  util::Rng rng(31);
  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  constexpr std::size_t kClients = 10'000;
  data::QuantityProfileConfig q;
  q.population = kClients;
  q.mean_records = 150;
  q.std_records = 450;
  q.max_records = 8000;
  auto counts = data::sample_quantity_profile(q, rng);
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < kClients; ++c)
    windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});

  util::Table t({"OVERCOMMIT", "MEAN ROUND (s)", "STRAGGLERS (stale)", "WASTE %"});
  for (double factor : {1.0, 1.15, 1.3, 1.5, 2.0}) {
    device::AvailabilityTrace trace(windows);
    fl::SyncConfig cfg;
    cfg.inputs.threads = g_threads;
    cfg.inputs.model_free = true;
    cfg.inputs.client_example_counts = &counts;
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &catalog;
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
    cfg.inputs.duration.update_bytes = 760'000;
    cfg.inputs.max_rounds = 150;
    cfg.inputs.reparticipation_gap_s = 1800.0;
    cfg.inputs.seed = 3;
    cfg.cohort_size = 20;
    cfg.overcommit = factor;
    fl::RunResult r = fl::run_fedavg(cfg);
    g_artifact->add_scalar("overcommit_waste.x" + std::to_string(static_cast<int>(factor * 100)),
                           r.metrics.waste_fraction());
    t.add_row({util::Table::num(factor, 2),
               util::Table::num(r.metrics.mean_round_duration_s(), 1),
               util::Table::count(static_cast<std::int64_t>(r.metrics.tasks_stale())),
               util::Table::pct(r.metrics.waste_fraction())});
  }
  std::cout << t.render();
  std::cout << "Expected: higher over-commitment shortens rounds (drops stragglers\n"
               "faster) but wastes more device work.\n\n";
}

void ablate_staleness_weighting() {
  std::cout << util::banner("Ablation (b): FedBuff staleness weighting");
  util::Rng rng(32);
  data::SyntheticTaskConfig tcfg;
  tcfg.clients = 300;
  tcfg.mean_records = 25;
  tcfg.std_records = 120;  // heavy skew -> genuinely stale slow clients
  tcfg.max_records = 2000;
  tcfg.dense_dim = 12;
  tcfg.heterogeneity = 0.6;
  tcfg.test_examples = 2000;
  auto task = data::make_synthetic_task(tcfg, rng);
  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < tcfg.clients; ++c)
    windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});

  util::Table t({"STALENESS WEIGHTING", "FINAL AUPR (median of 3)", "MEAN STALENESS"});
  for (bool weighting : {true, false}) {
    std::vector<double> metrics;
    double staleness = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      util::Rng mrng(600 + static_cast<std::uint64_t>(trial));
      auto model = task.make_model(mrng);
      device::AvailabilityTrace trace(windows);
      fl::AsyncConfig cfg;
      cfg.inputs.threads = g_threads;
      cfg.inputs.dataset = &task.train;
      cfg.inputs.dense_dim = task.batch_dense_dim();
      cfg.inputs.model_template = model.get();
      cfg.inputs.trace = &trace;
      cfg.inputs.catalog = &catalog;
      cfg.inputs.bandwidth = &bandwidth;
      cfg.inputs.test = &task.test;
      cfg.inputs.domain = task.config.domain;
      cfg.inputs.local.loss = task.loss_kind();
      cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
      cfg.inputs.duration.update_bytes = 500'000;
      cfg.inputs.max_rounds = 50;
      cfg.inputs.reparticipation_gap_s = 0.0;
      cfg.inputs.seed = 700 + static_cast<std::uint64_t>(trial);
      cfg.buffer_size = 10;
      cfg.max_concurrency = 80;  // high concurrency -> real staleness
      cfg.max_staleness = 100;
      cfg.staleness_weighting = weighting;
      fl::RunResult r = fl::run_fedbuff(cfg);
      metrics.push_back(r.final_metric);
      for (const auto& round : r.metrics.rounds()) staleness += round.mean_staleness;
      staleness /= static_cast<double>(std::max<std::size_t>(1, r.metrics.rounds().size()));
    }
    g_artifact->add_scalar(std::string("staleness_weighting_aupr.") +
                               (weighting ? "on" : "off"),
                           util::median(metrics));
    t.add_row({weighting ? "1/sqrt(1+s) (FedBuff)" : "uniform",
               util::Table::num(util::median(metrics), 4), util::Table::num(staleness, 2)});
  }
  std::cout << t.render();
  std::cout << "At low mean staleness the discount mostly down-weights useful\n"
               "updates; its protection matters in high-staleness regimes (Fig 8).\n\n";
}

void ablate_partitioning() {
  std::cout << util::banner("Ablation (c): executor partitioning under quantity skew");
  util::Rng rng(33);
  data::SyntheticTaskConfig tcfg;
  tcfg.clients = 2000;
  tcfg.mean_records = 30;
  tcfg.std_records = 200;
  tcfg.max_records = 20'000;
  tcfg.dense_dim = 4;
  tcfg.test_examples = 100;
  auto task = data::make_synthetic_task(tcfg, rng);

  util::Table t({"STRATEGY", "MAX/MIN EXECUTOR LOAD", "MAX EXECUTOR EXAMPLES"});
  for (bool balanced : {false, true}) {
    auto parts = balanced ? data::partition_balanced(task.train, 20)
                          : data::partition_round_robin(task.train, 20);
    std::vector<std::size_t> load(20, 0);
    for (std::size_t p = 0; p < 20; ++p)
      for (auto client : parts.partitions[p]) load[p] += task.train.client(client).size();
    auto [mn, mx] = std::minmax_element(load.begin(), load.end());
    g_artifact->add_scalar(std::string("partition_load_ratio.") +
                               (balanced ? "balanced" : "round_robin"),
                           static_cast<double>(*mx) / std::max<std::size_t>(1, *mn));
    t.add_row({balanced ? "balanced (LPT)" : "round-robin",
               util::Table::num(static_cast<double>(*mx) / std::max<std::size_t>(1, *mn), 2),
               util::Table::count(static_cast<std::int64_t>(*mx))});
  }
  std::cout << t.render();
  std::cout << "The paper partitions round-robin; balanced (LPT) assignment narrows\n"
               "executor-load spread under superuser skew, reducing straggler\n"
               "executors in the simulation cluster.\n\n";
}

void ablate_hashing() {
  std::cout << util::banner("Ablation (d): vocab files vs feature hashing (§4.1)");
  // A 70k-token vocabulary like the ads case study's high-cardinality fields.
  std::vector<std::pair<std::string, std::uint64_t>> freqs;
  std::vector<std::string> tokens;
  for (int i = 0; i < 70'000; ++i) {
    std::string tok = "feat_" + std::to_string(i * 7919 % 1'000'000);
    freqs.push_back({tok, static_cast<std::uint64_t>(70'000 - i)});
    tokens.push_back(tok);
  }
  feature::Vocab vocab = feature::Vocab::build(freqs, 70'000);
  std::cout << "vocab asset: " << util::Table::num(
                   static_cast<double>(vocab.asset_bytes()) / 1e6, 2)
            << " MB on device (paper cites 1.28MB for one high-cardinality field)\n\n";

  util::Table t({"HASH BUCKETS", "ASSET BYTES", "COLLISION RATE", "EXPECTED"});
  for (std::size_t buckets : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    feature::FeatureHasher hasher(buckets);
    double measured = feature::measured_collision_rate(tokens, hasher);
    double expected = feature::expected_collision_rate(tokens.size(), buckets);
    g_artifact->add_scalar("collision_rate.buckets_" + std::to_string(buckets), measured);
    t.add_row({util::Table::count(static_cast<std::int64_t>(buckets)), "0",
               util::Table::pct(measured), util::Table::pct(expected)});
  }
  std::cout << t.render();
  std::cout << "Hashing removes the vocab asset entirely; the cost is the collision\n"
               "rate, which falls geometrically with bucket count (Weinberger 2009).\n";
}

}  // namespace

void ablate_server_momentum() {
  std::cout << util::banner("Ablation (e): server momentum (FedAvgM) and FedProx");
  util::Rng rng(34);
  data::SyntheticTaskConfig tcfg;
  tcfg.clients = 250;
  tcfg.mean_records = 25;
  tcfg.std_records = 40;
  tcfg.dense_dim = 12;
  tcfg.heterogeneity = 0.8;
  tcfg.test_examples = 2000;
  auto task = data::make_synthetic_task(tcfg, rng);
  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < tcfg.clients; ++c)
    windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});

  struct Variant {
    const char* name;
    double server_momentum;
    double prox_mu;
  };
  util::Table t({"VARIANT", "FINAL AUPR (median of 3)"});
  for (Variant v : {Variant{"plain FedBuff", 0.0, 0.0},
                    Variant{"+ server momentum 0.9", 0.9, 0.0},
                    Variant{"+ FedProx mu=0.1", 0.0, 0.1},
                    Variant{"+ both", 0.9, 0.1}}) {
    std::vector<double> metrics;
    for (int trial = 0; trial < 3; ++trial) {
      util::Rng mrng(800 + static_cast<std::uint64_t>(trial));
      auto model = task.make_model(mrng);
      device::AvailabilityTrace trace(windows);
      fl::AsyncConfig cfg;
      cfg.inputs.threads = g_threads;
      cfg.inputs.dataset = &task.train;
      cfg.inputs.dense_dim = task.batch_dense_dim();
      cfg.inputs.model_template = model.get();
      cfg.inputs.trace = &trace;
      cfg.inputs.catalog = &catalog;
      cfg.inputs.bandwidth = &bandwidth;
      cfg.inputs.test = &task.test;
      cfg.inputs.domain = task.config.domain;
      cfg.inputs.local.loss = task.loss_kind();
      cfg.inputs.local.prox_mu = v.prox_mu;
      cfg.inputs.server_momentum = v.server_momentum;
      cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
      cfg.inputs.duration.update_bytes = 500'000;
      cfg.inputs.max_rounds = 40;
      cfg.inputs.reparticipation_gap_s = 0.0;
      cfg.inputs.seed = 900 + static_cast<std::uint64_t>(trial);
      cfg.buffer_size = 10;
      cfg.max_concurrency = 30;
      metrics.push_back(fl::run_fedbuff(cfg).final_metric);
    }
    t.add_row({v.name, util::Table::num(util::median(metrics), 4)});
  }
  std::cout << t.render();
  std::cout << "Optimizer extensions under strong heterogeneity; FedProx bounds\n"
               "client drift, momentum smooths the buffered server updates.\n";
}

int main(int argc, char** argv) {
  bench::BenchArtifact artifact(argc, argv, "ablation_design");
  artifact.set_config_text("ablations: overcommit/staleness/partitioning/hashing/momentum");
  g_artifact = &artifact;
  g_threads = bench::parse_threads(argc, argv);
  bench::print_header("Design ablations", "DESIGN.md §5 — the design choices worth measuring");
  ablate_overcommit();
  ablate_staleness_weighting();
  ablate_partitioning();
  ablate_hashing();
  ablate_server_momentum();
  return 0;
}
