// Figure 4 reproduction: two business-critical models' on-device training
// times and max CPU usage over 5000 examples across the 27-device fleet.
// The figure's points: (1) magnitudes of difference in training time between
// the two tasks; (2) devices optimized for one task can be worse for another.
#include "bench_helpers.h"

#include <algorithm>

#include "flint/device/benchmark_harness.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig4_device_benchmarks");
  bench::print_header("Figure 4: Per-device training time and CPU for two FL tasks",
                      "Task A := zoo Model C (fast embedding MLP); Task B := zoo "
                      "Model B (sparse-feature MLP); 5000 records per device");

  util::Rng rng(1008);
  auto catalog = device::DeviceCatalog::standard();
  auto fast = device::simulate_fleet_benchmark(ml::model_spec('C'), catalog, 5000, rng);
  auto slow = device::simulate_fleet_benchmark(ml::model_spec('B'), catalog, 5000, rng);

  util::Table t({"DEVICE", "OS", "TASK A TIME (s)", "TASK A CPU%", "TASK B TIME (s)",
                 "TASK B CPU%"});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    t.add_row({fast.per_device[i].device_name, device::os_name(fast.per_device[i].os),
               util::Table::num(fast.per_device[i].train_time_s, 2),
               util::Table::num(fast.per_device[i].cpu_pct, 2),
               util::Table::num(slow.per_device[i].train_time_s, 2),
               util::Table::num(slow.per_device[i].cpu_pct, 2)});
  }
  std::cout << t.render();

  artifact.set_config_text("fig4: zoo models C and B, 27-device fleet, 5000 records, seed 1008");
  artifact.add_scalar("mean_time_s.task_a", fast.mean_time_s);
  artifact.add_scalar("mean_time_s.task_b", slow.mean_time_s);
  artifact.add_scalar("time_ratio", slow.mean_time_s / fast.mean_time_s);
  bench::print_compare("task time magnitudes", "Task B ~19x Task A (61.81s vs 3.26s)",
                       util::Table::num(slow.mean_time_s / fast.mean_time_s, 1) +
                           "x (" + util::Table::num(slow.mean_time_s, 2) + "s vs " +
                           util::Table::num(fast.mean_time_s, 2) + "s)");

  // Count rank inversions between the two tasks' device orderings.
  auto rank_of = [&](const device::FleetBenchmarkReport& r) {
    std::vector<std::size_t> order(r.per_device.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return r.per_device[a].train_time_s < r.per_device[b].train_time_s;
    });
    std::vector<std::size_t> rank(order.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
    return rank;
  };
  auto ra = rank_of(fast);
  auto rb = rank_of(slow);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (ra[i] != rb[i]) ++moved;
  artifact.add_scalar("rank_moved_devices", static_cast<double>(moved));
  bench::print_compare("devices whose speed rank differs between tasks",
                       "\"devices optimized for one task might be worse for another\"",
                       util::Table::num(static_cast<double>(moved)) + " of 27");
  return 0;
}
