// Figure 5 reproduction: the client data-quantity distribution of the three
// proxy datasets, shown as log-spaced CCDFs ("data sizes between clients in
// different domains can greatly vary").
#include "bench_helpers.h"

#include "flint/util/histogram.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig5_quantity_dist");
  bench::print_header("Figure 5: Client data-quantity distributions (CCDF)",
                      "P(records/client > x) at log-spaced x for datasets A, B, C "
                      "(200k-client samples of the Table 2 profiles)");

  struct Spec {
    const char* name;
    data::QuantityProfileConfig quantity;
  };
  std::vector<Spec> specs = {
      {"A (ads)",
       {.population = 200'000, .mean_records = 99.0, .std_records = 667.0,
        .max_records = 39'731, .superuser_fraction = 0.002, .superuser_alpha = 1.1}},
      {"B (messaging)",
       {.population = 200'000, .mean_records = 184.0, .std_records = 374.0,
        .max_records = 103'471}},
      {"C (search)",
       {.population = 200'000, .mean_records = 1.53, .std_records = 1.47,
        .max_records = 406}},
  };

  util::Rng rng(1009);
  artifact.set_config_text("fig5: 200k-client samples of the Table 2 profiles, seed 1009");
  std::size_t spec_idx = 0;
  for (const auto& spec : specs) {
    auto counts = data::sample_quantity_profile(spec.quantity, rng);
    std::vector<double> values(counts.begin(), counts.end());
    auto ccdf = util::log_ccdf(values, 14);
    double total = 0.0;
    for (double v : values) total += v;
    artifact.add_scalar("mean_records.dataset_" + std::to_string(spec_idx++),
                        values.empty() ? 0.0 : total / static_cast<double>(values.size()));
    std::cout << "dataset " << spec.name << ":\n";
    std::cout << "  records/client: ";
    for (const auto& p : ccdf) std::printf("%9.3g", p.value);
    std::cout << "\n  P(X > x):       ";
    for (const auto& p : ccdf) std::printf("%9.3g", p.fraction);
    std::cout << "\n\n";
  }
  std::cout << "Shape check (paper): A and B have heavy multi-decade tails; C's\n"
               "clients hold only a handful of records each.\n";
  return 0;
}
