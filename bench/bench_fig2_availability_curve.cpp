// Figure 2 reproduction: normalized device availability over one week under
// strict participation criteria. The paper reports daily peaks with troughs
// dropping to ~1/14 of the weekly peak (a 14x fluctuation).
#include "bench_helpers.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig2_availability_curve");
  bench::print_header("Figure 2: Normalized device availability over one week",
                      "Hourly available-device counts under strict criteria "
                      "(WiFi + battery>=80% + modern OS), normalized to the weekly peak");

  util::Rng rng(1007);
  auto catalog = device::DeviceCatalog::standard();
  device::SessionGeneratorConfig cfg;
  cfg.clients = 8000;
  cfg.days = 7;
  auto log = device::generate_sessions(cfg, catalog, rng);

  auto trace = device::build_availability(log, bench::strict_criteria(), catalog);
  auto hourly = trace.hourly_availability();
  auto normalized = hourly.normalized_to_peak();

  // Print the week as one row per day, 24 hourly values each.
  for (std::size_t day = 0; day * 24 < normalized.size() && day < 7; ++day) {
    std::printf("day %zu: ", day + 1);
    for (std::size_t h = 0; h < 24; ++h) {
      std::size_t bin = day * 24 + h;
      if (bin < normalized.size()) std::printf("%4.2f ", normalized[bin]);
    }
    std::printf("\n");
  }

  double ratio = trace.peak_to_trough_ratio();
  artifact.set_config_text("fig2: 8000 clients, 7 days, strict criteria, seed 1007");
  artifact.add_scalar("peak_to_trough_ratio", ratio);
  artifact.add_scalar("hourly_bins", static_cast<double>(normalized.size()));
  std::cout << "\n";
  bench::print_compare("peak-to-trough fluctuation", "~14x",
                       util::Table::num(ratio, 1) + "x");
  std::cout << "\nASCII availability curve (hour-of-week, # = relative height):\n";
  // Compress to 4-hour buckets for readability.
  util::Histogram coarse(0.0, 7.0 * 24.0, 42);
  for (std::size_t i = 0; i < normalized.size() && i < 168; ++i)
    coarse.add(static_cast<double>(i) + 0.5, normalized[i]);
  std::cout << coarse.render(40);
  return 0;
}
