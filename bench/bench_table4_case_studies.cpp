// Table 4 reproduction: the three case studies (ads, messaging, search) —
// projected FL training time to convergence and offline-metric difference vs
// the centralized baseline, median over multiple trials.
//
// Paper:                 ADS        MESSAGING   SEARCH
//   training time        4.2 days   18.9 hrs    2.58 hrs
//   performance diff.    -1.85%     -0.18%      -1.64%   (AUPR/AUPR/NDCG)
//
// Each case trains REAL models (SGD from scratch) on synthetic non-IID
// proxies under measured-style availability traces; see DESIGN.md for the
// data substitution rationale. Trials are scaled from the paper's N=15 to
// N=5 for bench runtime.
#include "bench_helpers.h"

namespace {

using namespace flint;

struct CaseSpec {
  data::Domain domain;
  data::SyntheticTaskConfig task;
  double per_example_s;
  std::uint64_t update_bytes;
  std::uint64_t rounds;
  std::size_t buffer;
  std::size_t concurrency;
  int local_epochs;
  double client_lr;
  std::size_t trace_clients;  ///< per-case population (the paper's use cases
                              ///< draw on differently-sized populations)
  double reparticipation_gap_s;  ///< per-app device budget policy
  double server_lr = 1.0;
  double lr_decay = 0.85;
  std::uint64_t lr_decay_rounds = 40;
  const char* paper_time;
  const char* paper_diff;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArtifact artifact(argc, argv, "table4_case_studies");
  std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_header("Table 4: Projected FL training time and performance vs centralized",
                      "Real SGD on synthetic non-IID proxies under a 2-week synthetic "
                      "availability trace; N=5 trials (paper: N=15)");

  std::vector<CaseSpec> cases;
  {
    // Ads: heavy quantity skew, sparse response (label ratio 0.28 from
    // Table 2), Model-B-like cost profile, slowest convergence.
    CaseSpec ads;
    ads.domain = data::Domain::kAds;
    ads.task.domain = data::Domain::kAds;
    ads.task.clients = 700;
    ads.task.mean_records = 40;
    ads.task.std_records = 120;
    ads.task.max_records = 1500;
    ads.task.label_ratio = 0.28;
    ads.task.heterogeneity = 0.6;
    ads.task.dense_dim = 16;
    ads.task.test_examples = 3000;
    ads.per_example_s = 61.81 / 5000.0;
    ads.update_bytes = 760'000;
    ads.rounds = 220;
    ads.buffer = 10;
    ads.concurrency = 30;
    ads.local_epochs = 1;
    ads.client_lr = 0.12;
    ads.trace_clients = 800;
    ads.reparticipation_gap_s = 3600.0;
    ads.paper_time = "4.2 days";
    ads.paper_diff = "-1.85% (AUPR)";
    cases.push_back(ads);

    // Messaging: token model, very low positive rate, freshest data; FL is
    // nearly at parity with centralized (-0.18%).
    CaseSpec msg;
    msg.domain = data::Domain::kMessaging;
    msg.task.domain = data::Domain::kMessaging;
    msg.task.clients = 1500;
    msg.task.mean_records = 50;
    msg.task.std_records = 80;
    msg.task.max_records = 1000;
    msg.task.label_ratio = 0.05;
    msg.task.heterogeneity = 0.35;
    msg.task.vocab = 400;
    msg.task.tokens_per_example = 10;
    msg.task.test_examples = 3000;
    msg.per_example_s = 9.0 / 5000.0;
    msg.update_bytes = 120'000;
    msg.rounds = 450;
    msg.buffer = 20;
    msg.concurrency = 80;
    msg.local_epochs = 3;
    msg.client_lr = 0.3;
    msg.trace_clients = 1500;
    msg.reparticipation_gap_s = 600.0;  // fresh-data app: frequent participation
    msg.server_lr = 3.0;  // compensates sparse-embedding dilution in the buffer
    msg.lr_decay = 0.9;
    msg.lr_decay_rounds = 200;
    msg.paper_time = "18.9 hrs";
    msg.paper_diff = "-0.18% (AUPR)";
    cases.push_back(msg);

    // Search: low-latency ranking model, shortest training (2.58 hrs).
    CaseSpec search;
    search.domain = data::Domain::kSearch;
    search.task.domain = data::Domain::kSearch;
    search.task.clients = 2500;
    search.task.mean_records = 32;
    search.task.std_records = 60;
    search.task.max_records = 800;
    search.task.heterogeneity = 0.5;
    search.task.dense_dim = 12;
    search.task.candidates_per_group = 8;
    search.task.test_examples = 2400;
    search.per_example_s = 3.26 / 5000.0;
    search.update_bytes = 60'000;
    search.rounds = 60;
    search.buffer = 8;
    search.concurrency = 120;
    search.local_epochs = 1;
    search.client_lr = 0.08;
    search.trace_clients = 2500;
    search.reparticipation_gap_s = 600.0;
    search.paper_time = "2.58 hrs";
    search.paper_diff = "-1.64% (NDCG)";
    cases.push_back(search);
  }

  core::FlintPlatform platform(1004);
  net::PufferLikeBandwidthModel bandwidth;

  util::Table t({"", "TRAINING TIME", "(paper)", "PERFORMANCE DIFF.", "(paper)", "METRIC",
                 "FL (median)", "CENTRALIZED"});
  for (const auto& spec : cases) {
    // Per-case 2-week trace under the paper's strict criteria; the use
    // cases draw on differently sized client populations.
    device::SessionGeneratorConfig scfg;
    scfg.clients = spec.trace_clients;
    scfg.days = 14;
    scfg.mean_session_s = 2400.0;
    auto log = platform.generate_session_log(scfg);
    auto trace = platform.build_availability(log, bench::strict_criteria());

    util::Rng task_rng(2000 + static_cast<std::uint64_t>(spec.domain));
    auto task = data::make_synthetic_task(spec.task, task_rng);
    auto model = task.make_model(task_rng);

    fl::AsyncConfig cfg;
    cfg.inputs.threads = threads;
    cfg.inputs.dataset = &task.train;
    cfg.inputs.dense_dim = task.batch_dense_dim();
    cfg.inputs.model_template = model.get();
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &platform.devices();
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.test = &task.test;
    cfg.inputs.domain = spec.domain;
    cfg.inputs.local.loss = task.loss_kind();
    cfg.inputs.local.lr = spec.client_lr;
    cfg.inputs.local.clip_norm = 1.0;  // stabilizes both local and centralized SGD
    cfg.inputs.client_lr =
        fl::LrSchedule::exponential_decay(spec.client_lr, spec.lr_decay, spec.lr_decay_rounds);
    cfg.inputs.server_lr = spec.server_lr;
    cfg.inputs.duration.base_time_per_example_s = spec.per_example_s;
    cfg.inputs.duration.update_bytes = spec.update_bytes;
    cfg.inputs.duration.local_epochs = spec.local_epochs;
    cfg.inputs.local.epochs = spec.local_epochs;
    cfg.inputs.max_rounds = spec.rounds;
    cfg.inputs.reparticipation_gap_s = spec.reparticipation_gap_s;
    cfg.buffer_size = spec.buffer;
    cfg.max_concurrency = spec.concurrency;
    cfg.max_staleness = 30;

    core::ForecastConfig fconfig;
    fconfig.update_bytes = spec.update_bytes;
    core::CaseStudyResult result =
        platform.evaluate_case_study(task, cfg, /*trials=*/5, /*centralized_epochs=*/6, fconfig);

    std::string key = data::domain_name(spec.domain);
    artifact.add_scalar("training_h." + key, result.projected_training_h);
    artifact.add_scalar("performance_diff_pct." + key, result.performance_diff_pct);
    artifact.add_scalar("fl_metric." + key, result.fl_metric);
    // Last case wins for run + forecast; per-case numbers live in scalars.
    artifact.set_forecast(result.forecast);
    if (!result.fl_trials.trials.empty())
      artifact.set_run(result.fl_trials.trials.front(), task.metric_name());

    char diff_buf[32];
    std::snprintf(diff_buf, sizeof(diff_buf), "%+.2f%%", result.performance_diff_pct);
    t.add_row({data::domain_name(spec.domain),
               bench::human_duration(result.projected_training_h * 3600.0), spec.paper_time,
               diff_buf, spec.paper_diff, task.metric_name(),
               util::Table::num(result.fl_metric, 4),
               util::Table::num(result.centralized_metric, 4)});

    std::cout << data::domain_name(spec.domain)
              << ": forecast -> " << result.forecast.summary() << "\n";
  }
  artifact.set_config_text("table4: 3 case studies, N=5 trials, platform seed 1004");
  std::cout << "\n" << t.render();
  std::cout << "\nReproduction notes: all three cases land in the paper's regime —\n"
               "FL slightly below centralized, with ads slowest and search fastest\n"
               "to train. Messaging needs ~3x the paper's wall time on our proxy:\n"
               "its rare-positive token task converges slowly under buffered-async\n"
               "FL, and single trials vary widely (the Figure 10 phenomenon), so the\n"
               "row reports the median of 5 trials.\n";
  return 0;
}
