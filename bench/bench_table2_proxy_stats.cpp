// Table 2 reproduction: characteristics of the three proxy datasets, driven
// by the client-quantity profile generator at full population scale
// (Dataset C materializes 16.4M client counts).
//
// Paper:                 A          B           C
//   client population    700,000    1,024,950   16,422,290
//   max records          39,731     103,471     406
//   avg records          99         184         1.53
//   std records          667        374         1.47
//   label ratio          0.28       0.05        0.06
//   lookback days        90         28          61
#include "bench_helpers.h"

#include "flint/data/dataset_stats.h"

namespace {

struct ProfileSpec {
  const char* name;
  flint::data::QuantityProfileConfig quantity;
  double label_ratio;
  int lookback_days;
  const char* paper_row;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "table2_proxy_stats");
  bench::print_header("Table 2: Proxy dataset characteristics",
                      "Quantity profiles sampled at full population scale; "
                      "moments calibrated to the paper's per-dataset statistics");

  std::vector<ProfileSpec> specs = {
      {"DATASET A (ads)",
       {.population = 700'000, .mean_records = 99.0, .std_records = 667.0,
        .max_records = 39'731, .superuser_fraction = 0.002, .superuser_alpha = 1.1},
       0.28, 90, "pop 700,000 | max 39,731 | avg 99 | std 667 | ratio 0.28"},
      {"DATASET B (messaging)",
       {.population = 1'024'950, .mean_records = 184.0, .std_records = 374.0,
        .max_records = 103'471, .superuser_fraction = 0.0005, .superuser_alpha = 1.0},
       0.05, 28, "pop 1,024,950 | max 103,471 | avg 184 | std 374 | ratio 0.05"},
      {"DATASET C (search)",
       {.population = 16'422'290, .mean_records = 1.53, .std_records = 1.47,
        .max_records = 406, .superuser_fraction = 0.00002, .superuser_alpha = 0.9},
       0.06, 61, "pop 16,422,290 | max 406 | avg 1.53 | std 1.47 | ratio 0.06"},
  };

  util::Table t({"", "CLIENT POP.", "MAX RECORDS", "AVG RECORDS", "STD RECORDS",
                 "LABEL RATIO", "LOOKBACK DAYS"});
  util::Rng rng(1002);
  artifact.set_config_text("table2: full-population quantity profiles, seed 1002");
  std::size_t spec_idx = 0;
  for (const auto& spec : specs) {
    auto counts = data::sample_quantity_profile(spec.quantity, rng);
    auto stats =
        data::compute_stats_from_counts(counts, spec.label_ratio, spec.name, spec.lookback_days);
    std::string key = "dataset_" + std::to_string(spec_idx++);
    artifact.add_scalar("avg_records." + key, stats.avg_records);
    artifact.add_scalar("std_records." + key, stats.std_records);
    artifact.add_scalar("max_records." + key, static_cast<double>(stats.max_records));
    t.add_row({spec.name, util::Table::count(static_cast<std::int64_t>(stats.client_population)),
               util::Table::count(static_cast<std::int64_t>(stats.max_records)),
               util::Table::num(stats.avg_records, 2), util::Table::num(stats.std_records, 1),
               util::Table::num(stats.label_ratio, 2), util::Table::num(stats.lookback_days)});
    bench::print_compare(spec.name, spec.paper_row, "see table row");
  }
  std::cout << "\n" << t.render();
  return 0;
}
