// Figure 8 reproduction: succeeded / interrupted / stale client tasks under
// different concurrency and max-staleness settings in FedBuff.
//
// Paper's findings: higher concurrency increases both client tasks started
// and wasted tasks; higher staleness tolerance decreases stale tasks.
#include "bench_helpers.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig8_staleness");
  std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_header("Figure 8: Task outcomes vs concurrency and max staleness",
                      "FedBuff over realistic (short-window) availability; fixed "
                      "aggregation budget per cell");

  util::Rng rng(1011);
  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;

  // Sized so the concurrency knob actually binds: the steady-state number
  // of running tasks is (arrival flux) x (task duration) ~ 600, so caps of
  // 100-800 sweep from saturated to slack, as in the paper's figure.
  constexpr std::size_t kClients = 40'000;
  data::QuantityProfileConfig q;
  q.population = kClients;
  q.mean_records = 3000;
  q.std_records = 3000;
  q.max_records = 12'000;
  auto counts = data::sample_quantity_profile(q, rng);

  // Hour-scale availability windows with a spread; heavyweight tail tasks
  // overrun their window and get interrupted.
  std::vector<device::AvailabilityWindow> base_windows;
  for (std::size_t c = 0; c < kClients; ++c) {
    double start = rng.uniform(0.0, 6.0 * 3600.0);
    for (int w = 0; w < 8; ++w) {
      double len = rng.lognormal(std::log(3600.0), 0.7);
      base_windows.push_back({c, catalog.sample_device(rng), start, start + len});
      start += len + rng.uniform(2.0 * 3600.0, 10.0 * 3600.0);
    }
  }
  std::sort(base_windows.begin(), base_windows.end(),
            [](const device::AvailabilityWindow& a, const device::AvailabilityWindow& b) {
              return a.start < b.start;
            });

  util::Table t({"CONCURRENCY", "MAX STALENESS", "STARTED", "SUCCEEDED", "INTERRUPTED",
                 "STALE", "WASTE %"});
  for (std::size_t concurrency : {100u, 200u, 400u, 800u}) {
    for (std::uint64_t staleness : {5u, 20u, 100u}) {
      device::AvailabilityTrace trace(base_windows);
      fl::AsyncConfig cfg;
      cfg.inputs.threads = threads;
      cfg.inputs.model_free = true;
      cfg.inputs.client_example_counts = &counts;
      cfg.inputs.trace = &trace;
      cfg.inputs.catalog = &catalog;
      cfg.inputs.bandwidth = &bandwidth;
      // A heavyweight task (Model-D-like per-example cost, 5 local epochs)
      // whose tail durations exceed typical availability windows — the
      // regime where interruption and staleness accounting matter.
      cfg.inputs.duration.base_time_per_example_s = 70.13 / 5000.0;
      cfg.inputs.duration.local_epochs = 5;
      cfg.inputs.duration.jitter_sigma = 0.4;
      cfg.inputs.duration.update_bytes = 1'500'000;
      cfg.inputs.reparticipation_gap_s = 3600.0;
      cfg.inputs.max_rounds = 150;
      cfg.inputs.seed = 21;
      cfg.buffer_size = 20;
      cfg.max_concurrency = concurrency;
      cfg.max_staleness = staleness;
      fl::RunResult r = fl::run_fedbuff(cfg);
      const auto& m = r.metrics;
      std::string cell =
          "c" + std::to_string(concurrency) + ".s" + std::to_string(staleness);
      artifact.add_scalar("waste_fraction." + cell, m.waste_fraction());
      artifact.add_scalar("tasks_started." + cell, static_cast<double>(m.tasks_started()));
      if (concurrency == 800u && staleness == 100u) artifact.set_run(r, "none (model-free)");
      t.add_row({util::Table::num(static_cast<double>(concurrency)),
                 util::Table::num(static_cast<double>(staleness)),
                 util::Table::count(static_cast<std::int64_t>(m.tasks_started())),
                 util::Table::count(static_cast<std::int64_t>(m.tasks_succeeded())),
                 util::Table::count(static_cast<std::int64_t>(m.tasks_interrupted())),
                 util::Table::count(static_cast<std::int64_t>(m.tasks_stale())),
                 util::Table::pct(m.waste_fraction())});
    }
  }
  artifact.set_config_text("fig8: 40k clients, model-free fedbuff grid, seed 21");
  std::cout << t.render();
  std::cout << "\nPaper trends to check: (1) started and wasted tasks grow with\n"
               "concurrency; (2) stale tasks shrink as the staleness limit rises.\n";
  return 0;
}
