// Table 1 reproduction: mobile device availability after applying each
// participation criterion, and their intersection.
//
// Paper:  A (WiFi) 70% | B (battery >= 80%) 34% | C (OS >= Sept 2019) 93%
//         A ∩ B ∩ C = 22%
#include "bench_helpers.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "table1_availability");
  bench::print_header(
      "Table 1: Device availability under participation criteria",
      "2-week synthetic session log, 6000 clients, duration-weighted fractions");

  util::Rng rng(1001);
  auto catalog = device::DeviceCatalog::standard();
  auto log = bench::two_week_log(catalog, 6000, rng);

  device::AvailabilityCriteria wifi;
  wifi.require_wifi = true;
  device::AvailabilityCriteria battery;
  battery.min_battery_pct = 80.0;
  device::AvailabilityCriteria os;
  os.min_os_release = 201909;
  device::AvailabilityCriteria all;
  all.require_wifi = true;
  all.min_battery_pct = 80.0;
  all.min_os_release = 201909;

  double fa = device::criteria_pass_fraction(log, wifi, catalog);
  double fb = device::criteria_pass_fraction(log, battery, catalog);
  double fc = device::criteria_pass_fraction(log, os, catalog);
  double fall = device::criteria_pass_fraction(log, all, catalog);
  artifact.set_config_text("table1: 2-week log, 6000 clients, seed 1001");
  artifact.add_scalar("pass_fraction.wifi", fa);
  artifact.add_scalar("pass_fraction.battery", fb);
  artifact.add_scalar("pass_fraction.os", fc);
  artifact.add_scalar("pass_fraction.all", fall);
  artifact.add_scalar("sessions", static_cast<double>(log.sessions.size()));

  util::Table t({"TRAINING CRITERIA", "DEVICES AVAILABLE (measured)", "PAPER"});
  t.add_row({"A: connected to WiFi", util::Table::pct(fa), "70%"});
  t.add_row({"B: battery level >= 80%", util::Table::pct(fb), "34%"});
  t.add_row({"C: OS release >= Sept. 2019", util::Table::pct(fc), "93%"});
  t.add_row({"A ∩ B ∩ C", util::Table::pct(fall), "22%"});
  std::cout << t.render();

  std::cout << "\nSession log: " << log.sessions.size() << " sessions, total "
            << bench::human_duration(log.total_duration()) << " of foreground time\n";
  return 0;
}
