// Compression accuracy gate: proves the quantized wire formats (DESIGN.md
// §16) do not meaningfully hurt model quality. Runs the same FedBuff job
// three times — raw float32 updates, int8 symmetric quantization, and top-25%
// sparsification with error feedback — and compares the final held-out eval
// loss of each compressed run against the f32 reference.
//
// Unlike the other benches this one is also a correctness gate (registered
// with ctest): it exits nonzero when int8 drifts more than 1% relative from
// f32, or top-k more than 5%. Tolerances are loose on purpose — compression
// is lossy by design; what must not happen is quality falling off a cliff.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_helpers.h"
#include "flint/ml/loss.h"
#include "flint/util/table.h"

namespace {

using namespace flint;

/// Mean BCE loss of `model` over the held-out test set, chunked so peak
/// batch memory stays small. Chunk boundaries are fixed, so the result is
/// deterministic for given parameters.
double eval_loss(ml::Model& model, const std::vector<ml::Example>& test,
                 std::size_t dense_dim) {
  constexpr std::size_t kChunk = 256;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t start = 0; start < test.size(); start += kChunk) {
    std::size_t end = std::min(start + kChunk, test.size());
    ml::Batch batch =
        ml::Batch::from_examples(std::span(test).subspan(start, end - start), dense_dim);
    ml::Tensor logits = model.forward(batch);
    total += ml::bce_with_logits(logits, batch.labels).loss * static_cast<double>(end - start);
    n += end - start;
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArtifact artifact(argc, argv, "compression_accuracy");
  artifact.set_config_text(
      "compression_accuracy: ads proxy, 200 clients, fedbuff 40 rounds, seed 271");
  bench::print_header("Compression accuracy: final eval loss vs raw float32",
                      "Same FedBuff job under each wire format; int8 must stay "
                      "within 1% relative eval loss of f32, top-k within 5%");

  util::Rng rng(271);
  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kAds;
  task_cfg.clients = 200;
  task_cfg.mean_records = 30;
  task_cfg.std_records = 40;
  task_cfg.max_records = 400;
  task_cfg.dense_dim = 12;
  task_cfg.test_examples = 2000;
  data::FederatedTask task = data::make_synthetic_task(task_cfg, rng);
  device::DeviceCatalog catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < task_cfg.clients; ++c)
    windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});
  auto model = task.make_model(rng);
  std::size_t threads = bench::parse_threads(argc, argv);

  struct Scheme {
    const char* name;
    const char* key;
    compress::CompressionConfig config;
  };
  const Scheme schemes[] = {
      {"raw float32", "f32", {}},
      {"int8 quantized", "int8", {.kind = compress::CompressionKind::kInt8}},
      {"top-25% sparsified", "topk",
       {.kind = compress::CompressionKind::kTopK, .top_k_fraction = 0.25}},
  };

  util::Table table({"SCHEME", "EVAL LOSS", "REL DIFF VS F32", "AUPR"});
  double f32_loss = 0.0;
  bool ok = true;
  for (const Scheme& scheme : schemes) {
    device::AvailabilityTrace trace(windows);
    fl::AsyncConfig cfg;
    cfg.inputs.threads = threads;
    cfg.inputs.dataset = &task.train;
    cfg.inputs.dense_dim = task.batch_dense_dim();
    cfg.inputs.model_template = model.get();
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &catalog;
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.test = &task.test;
    cfg.inputs.domain = task.config.domain;
    cfg.inputs.local.loss = task.loss_kind();
    cfg.inputs.local.clip_norm = 1.0;
    cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
    cfg.inputs.max_rounds = 40;
    cfg.inputs.reparticipation_gap_s = 0.0;
    cfg.inputs.seed = 4242;
    cfg.inputs.compression = scheme.config;
    cfg.buffer_size = 10;
    cfg.max_concurrency = 25;
    fl::RunResult result = fl::run_fedbuff(cfg);

    auto eval_model = model->clone();
    eval_model->set_flat_parameters(result.final_parameters);
    double loss = eval_loss(*eval_model, task.test, task.batch_dense_dim());

    std::string rel_text = "reference";
    if (std::string(scheme.key) == "f32") {
      f32_loss = loss;
    } else {
      double rel = std::abs(loss - f32_loss) / f32_loss;
      double limit = std::string(scheme.key) == "int8" ? 0.01 : 0.05;
      rel_text = util::Table::pct(rel, 2) + (rel <= limit ? "" : "  EXCEEDS LIMIT");
      if (rel > limit) ok = false;
      artifact.add_scalar(std::string("compression.rel_loss_diff.") + scheme.key, rel);
    }
    artifact.add_scalar(std::string("compression.eval_loss.") + scheme.key, loss);
    artifact.add_scalar(std::string("compression.final_metric.") + scheme.key,
                        result.final_metric);
    table.add_row({scheme.name, util::Table::num(loss, 6), rel_text,
                   util::Table::num(result.final_metric, 4)});
  }
  std::cout << table.render();

  if (!ok) {
    std::cerr << "\nbench_compression_accuracy: FAIL — a compressed run drifted "
                 "past its eval-loss tolerance (int8 1%, top-k 5%)\n";
    return 1;
  }
  std::cout << "\nbench_compression_accuracy: OK — compressed runs within tolerance\n";
  return 0;
}
