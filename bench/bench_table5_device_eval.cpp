// Table 5 reproduction: on-device evaluation of the five device-capable
// model architectures over the 27-device fleet (5000 records each).
//
// Paper (aggregated across 27 devices):
//   Model  Params  Storage  Network  Memory  MeanTime  StdevTime  MeanCPU
//   A      1.51k   0.057    0.11     3.08    4.98      3.37       1.63
//   B      189k    0.76     1.52     10.64   61.81     44.17      3.91
//   C      208k    0.85     1.88     0.85    3.26      2.23       5.29
//   D      390k    10.79    3.12     8.37    70.13     50.82      4.72
//   E      922k    7.52     7.38     43.14   238.38    178.13     6.43
//
// Parameter counts come from the real from-scratch models; the fleet
// timing/footprint columns come from the calibrated device-farm simulation
// (see DESIGN.md substitutions). A real host micro-benchmark column grounds
// the numbers in measured training on this machine's CPU.
#include "bench_helpers.h"

#include "flint/device/benchmark_harness.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "table5_device_eval");
  bench::print_header("Table 5: On-device evaluation of Models A-E",
                      "27-device fleet simulation, 5000 records per run; params are "
                      "measured from the real models; host column is real wall-clock");

  util::Rng rng(1005);
  auto catalog = device::DeviceCatalog::standard();

  util::Table t({"Model", "Description", "Trainable Params", "Storage (MB)", "Network (MB)",
                 "Memory (MB)", "Mean Time (s)", "Stdev Time (s)", "Mean CPU (%)",
                 "Host 500-rec (s)"});
  artifact.set_config_text("table5: zoo models A-E over 27-device fleet, seed 1005");
  for (const auto& spec : ml::model_zoo()) {
    auto model = ml::build_zoo_model(spec.id, rng);
    auto report = device::simulate_fleet_benchmark(spec, catalog, 5000, rng);
    // Real micro-benchmark on this machine (500 records keeps E tractable).
    double host_s = device::measure_host_training_time_s(*model, 500, rng);
    std::string key(1, spec.id);
    artifact.add_scalar("params." + key, static_cast<double>(model->parameter_count()));
    artifact.add_scalar("mean_time_s." + key, report.mean_time_s);

    t.add_row({std::string(1, spec.id), spec.description,
               util::Table::count(static_cast<std::int64_t>(model->parameter_count())),
               util::Table::num(spec.calibration.storage_mb, 3),
               util::Table::num(spec.calibration.network_mb, 2),
               util::Table::num(report.mean_memory_mb, 2),
               util::Table::num(report.mean_time_s, 2),
               util::Table::num(report.stdev_time_s, 2),
               util::Table::num(report.mean_cpu_pct, 2), util::Table::num(host_s, 2)});
  }
  std::cout << t.render();

  std::cout << "\nPaper parameter counts: A 1.51k, B 189k, C 208k, D 390k, E 922k\n"
            << "Fleet heterogeneity (speed multiplier): mean=1.0 stdev="
            << util::Table::num(catalog.stddev_speed(), 2)
            << " (paper's Table 5 stdev/mean ratios: 0.68-0.75)\n";
  return 0;
}
