// Figure 7 reproduction: FedBuff buffer-size setting vs the time it takes to
// populate the buffer (= one aggregation), at max concurrency 180.
// The paper shows buffer-fill duration growing with buffer size; "having a
// realistic estimation of time during offline evaluation helps modelers
// understand the impact of different parameters".
#include "bench_helpers.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig7_buffer_size");
  std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_header("Figure 7: Buffer size vs buffer-fill duration (max concurrency = 180)",
                      "Model-free FedBuff; ads-like workload; mean seconds per "
                      "aggregation across the run");

  util::Rng rng(1010);
  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;

  constexpr std::size_t kClients = 20'000;
  data::QuantityProfileConfig q;
  q.population = kClients;
  q.mean_records = 99;
  q.std_records = 200;
  q.max_records = 4000;
  auto counts = data::sample_quantity_profile(q, rng);
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < kClients; ++c)
    windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});

  util::Table t({"BUFFER SIZE", "MEAN FILL TIME (s)", "AGGREGATIONS", "TASKS STARTED"});
  std::vector<std::pair<std::size_t, double>> series;
  for (std::size_t buffer : {10u, 20u, 40u, 60u, 90u, 120u, 150u, 180u}) {
    device::AvailabilityTrace trace(windows);  // fresh copy per run
    fl::AsyncConfig cfg;
    cfg.inputs.threads = threads;
    cfg.inputs.model_free = true;
    cfg.inputs.client_example_counts = &counts;
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &catalog;
    cfg.inputs.bandwidth = &bandwidth;
    // Model-E-like cost (the heaviest zoo profile) with 2 local epochs, so
    // the buffer-fill axis reads in tens of seconds as in the paper.
    cfg.inputs.duration.base_time_per_example_s = 238.38 / 5000.0;
    cfg.inputs.duration.local_epochs = 2;
    cfg.inputs.duration.update_bytes = 3'700'000;
    cfg.inputs.reparticipation_gap_s = 1800.0;
    cfg.inputs.max_rounds = 60;
    cfg.inputs.seed = 11;
    cfg.buffer_size = buffer;
    cfg.max_concurrency = 180;
    cfg.max_staleness = 100;
    // Crash-safety plumbing for the representative (largest-buffer) run only:
    // one checkpoint lineage per store, and the sweep varies the config.
    auto checkpoints = buffer == 180u
                           ? bench::wire_checkpoint_args(argc, argv, cfg.inputs)
                           : nullptr;
    auto rpc = buffer == 180u ? bench::wire_rpc_args(argc, argv, cfg.inputs) : nullptr;
    fl::RunResult r = fl::run_fedbuff(cfg);
    double fill = r.metrics.mean_round_duration_s();
    series.push_back({buffer, fill});
    artifact.add_scalar("fill_time_s.buffer_" + std::to_string(buffer), fill);
    if (buffer == 180u) artifact.set_run(r, "none (model-free)");
    t.add_row({util::Table::num(static_cast<double>(buffer)), util::Table::num(fill, 1),
               util::Table::num(static_cast<double>(r.rounds)),
               util::Table::count(static_cast<std::int64_t>(r.metrics.tasks_started()))});
  }
  artifact.set_config_text("fig7: 20k clients, model-free fedbuff, concurrency 180, seed 11");
  std::cout << t.render();

  bool monotone = true;
  for (std::size_t i = 1; i < series.size(); ++i)
    if (series[i].second < series[i - 1].second) monotone = false;
  bench::print_compare("fill time grows with buffer size", "yes (Figure 7)",
                       monotone ? "yes (monotone)" : "mostly (small inversions)");
  return 0;
}
