// Shared builders for the table/figure reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "flint/core/platform.h"
#include "flint/core/run_artifact.h"
#include "flint/data/proxy_generator.h"
#include "flint/device/availability.h"
#include "flint/device/session_generator.h"
#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "flint/fl/rpc_runtime.h"
#include "flint/ml/kernels/kernels.h"
#include "flint/obs/telemetry.h"
#include "flint/store/checkpoint.h"
#include "flint/util/table.h"

namespace flint::bench {

/// Opt-in profiling for a bench binary: `--trace-out t.json` and/or
/// `--metrics-out m.jsonl` build a Telemetry, install it as the ambient obs
/// context for the bench's lifetime, and export the files on destruction.
/// Without either flag nothing is installed, so the instrumented hot paths
/// keep their disabled cost (one relaxed load + branch per site) and bench
/// timings stay comparable.
class BenchTelemetry {
 public:
  BenchTelemetry(int argc, char** argv) {
    obs::TelemetryConfig config;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace-out") == 0) config.trace_out = argv[i + 1];
      if (std::strcmp(argv[i], "--metrics-out") == 0) config.metrics_out = argv[i + 1];
    }
    if (config.trace_out.empty() && config.metrics_out.empty()) return;
    config.tracing_enabled = !config.trace_out.empty();
    telemetry_.emplace(config);
    scope_.emplace(&*telemetry_);
  }

  ~BenchTelemetry() {
    if (!telemetry_.has_value()) return;
    scope_.reset();  // uninstall before export so no more samples land
    telemetry_->snapshot_now();
    telemetry_->export_all();
    std::cout << "\nTelemetry: " << telemetry_->metrics().series_count() << " metric series, "
              << telemetry_->tracer().event_count() << " trace spans exported\n";
  }

  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

  obs::Telemetry* telemetry() { return telemetry_.has_value() ? &*telemetry_ : nullptr; }

 private:
  std::optional<obs::Telemetry> telemetry_;
  std::optional<obs::ScopedTelemetry> scope_;
};

/// Every bench binary's regression interface: declare one of these at the
/// top of main and it writes a schema-versioned core::RunArtifact JSON on
/// exit — `BENCH_<name>.json` in the working directory, or wherever
/// `--artifact-out path` points. Benches feed it their headline numbers via
/// add_scalar(), and FL-running benches hand over a representative RunResult
/// via set_run() so model/system/ledger sections are populated too.
/// tools/flint_compare.py diffs two such artifacts; the CI smoke-bench job
/// compares against checked-in baselines. (flint_lint enforces that every
/// bench_*.cpp declares one.)
class BenchArtifact {
 public:
  BenchArtifact(int argc, char** argv, std::string name) {
    inputs_.name = std::move(name);
    path_ = "BENCH_" + inputs_.name + ".json";
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--artifact-out") == 0) path_ = argv[i + 1];
      // Every bench declares a BenchArtifact (lint-enforced), so parsing the
      // kernel-path pin here gives the whole bench suite `--kernels` at once.
      if (std::strcmp(argv[i], "--kernels") == 0) ml::kernels::set_path(argv[i + 1]);
    }
    start_ = std::chrono::steady_clock::now();
  }

  ~BenchArtifact() {
    inputs_.run = &run_;
    if (forecast_.has_value()) inputs_.forecast = &*forecast_;
    inputs_.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    try {
      core::write_run_artifact(path_, inputs_);
      std::cout << "\nRun artifact: " << path_ << "\n";
    } catch (const std::exception& e) {
      // A destructor must not throw; an unwritable artifact is a reporting
      // failure, not a bench failure.
      std::cerr << "\nRun artifact write failed: " << e.what() << "\n";
    }
  }

  BenchArtifact(const BenchArtifact&) = delete;
  BenchArtifact& operator=(const BenchArtifact&) = delete;

  /// Record the bench's representative run (copied; call once, last wins).
  void set_run(const fl::RunResult& run, const std::string& metric_name) {
    run_ = run;
    inputs_.metric_name = metric_name;
  }
  /// Config text to fingerprint (so compare can flag setup drift).
  void set_config_text(std::string text) { inputs_.config_text = std::move(text); }
  void set_forecast(const core::ResourceForecast& forecast) { forecast_ = forecast; }
  /// One named headline number (fill time, pass fraction, speedup, ...).
  void add_scalar(const std::string& name, double value) {
    inputs_.scalars.emplace_back(name, value);
  }

  const std::string& path() const { return path_; }

 private:
  core::RunArtifactInputs inputs_;
  fl::RunResult run_;  ///< default (all-zero) when the bench never runs FL
  std::optional<core::ResourceForecast> forecast_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Parse `--threads N`: worker threads for client training and evaluation
/// (fl::RunInputs::threads). Defaults to 1 (serial). Results are
/// bit-identical at any value — the knob trades wall time only — which is
/// why it never belongs in an artifact's config_text.
inline std::size_t parse_threads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return 1;
}

/// Parse `--checkpoint-dir dir [--checkpoint-every N] [--resume]` and wire
/// them into the run's inputs: the returned store (kept alive by the caller)
/// receives periodic checkpoints, and with --resume the run restarts from its
/// newest valid one, finishing bit-identically to an uninterrupted run
/// (DESIGN.md §12). Returns null — and leaves the inputs untouched — when
/// --checkpoint-dir is absent, so default bench timings are unaffected.
inline std::unique_ptr<store::CheckpointStore> wire_checkpoint_args(int argc, char** argv,
                                                                    fl::RunInputs& inputs) {
  std::string dir;
  std::uint64_t every = 10;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) dir = argv[i + 1];
    if (std::strcmp(argv[i], "--checkpoint-every") == 0 && i + 1 < argc)
      every = std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strcmp(argv[i], "--resume") == 0) resume = true;
  }
  if (dir.empty()) return nullptr;
  // Heap-allocated because CheckpointStore owns a mutex and is immovable.
  auto checkpoints = std::make_unique<store::CheckpointStore>(dir);
  inputs.leader.checkpoint_every_rounds = every;
  inputs.leader.checkpoint_store = checkpoints.get();
  if (resume) inputs.resume_from = checkpoints.get();
  return checkpoints;
}

/// Parse `--transport mode [--rpc-executors N] [--executor-bin path]
/// [--rpc-dir dir]` and stand up the rpc leader/executor runtime for the
/// run (DESIGN.md §14). Call after `inputs` is fully populated (the model
/// blob ships in the RegisterAck); the returned runtime must outlive the
/// run. Returns null — and leaves the inputs untouched — without
/// --transport (or with --transport inprocess), so default bench timings
/// are unaffected. Like --threads, the knob changes wall time only: results
/// stay bit-identical, so it never belongs in an artifact's config_text.
inline std::unique_ptr<fl::RpcRuntime> wire_rpc_args(int argc, char** argv,
                                                     fl::RunInputs& inputs) {
  fl::RpcRuntimeConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc)
      cfg.kind = fl::parse_transport(argv[i + 1]);
    if (std::strcmp(argv[i], "--rpc-executors") == 0 && i + 1 < argc)
      cfg.executors = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    if (std::strcmp(argv[i], "--executor-bin") == 0 && i + 1 < argc)
      cfg.executor_bin = argv[i + 1];
    if (std::strcmp(argv[i], "--rpc-dir") == 0 && i + 1 < argc) cfg.socket_dir = argv[i + 1];
  }
  if (cfg.kind == fl::TransportKind::kInProcess) return nullptr;
  auto runtime = std::make_unique<fl::RpcRuntime>(cfg, inputs);
  inputs.rpc_leader = runtime->leader();
  return runtime;
}

/// The paper's strict participation criteria (§4.1): foreground app,
/// battery > 80%, WiFi, and a modern OS.
inline device::AvailabilityCriteria strict_criteria() {
  device::AvailabilityCriteria c;
  c.require_wifi = true;
  c.min_battery_pct = 80.0;
  c.require_foreground = true;
  c.min_os_release = 201909;
  return c;
}

/// Two-week synthetic session log sized for bench runtimes.
inline device::SessionLog two_week_log(const device::DeviceCatalog& catalog, std::size_t clients,
                                       util::Rng& rng) {
  device::SessionGeneratorConfig cfg;
  cfg.clients = clients;
  cfg.days = 14;
  return device::generate_sessions(cfg, catalog, rng);
}

/// Print a section header followed by the reproduction context line.
inline void print_header(const std::string& title, const std::string& context) {
  std::cout << "\n" << util::banner(title);
  if (!context.empty()) std::cout << context << "\n\n";
}

/// "paper X vs measured Y" comparison line.
inline void print_compare(const std::string& what, const std::string& paper,
                          const std::string& measured) {
  std::cout << "  " << what << ": paper=" << paper << "  measured=" << measured << "\n";
}

/// Format seconds as a human-scale duration (the paper mixes hrs and days).
inline std::string human_duration(double seconds) {
  char buf[64];
  if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds < 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.2f hrs", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f days", seconds / 86400.0);
  }
  return buf;
}

}  // namespace flint::bench
