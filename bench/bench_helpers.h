// Shared builders for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "flint/core/platform.h"
#include "flint/data/proxy_generator.h"
#include "flint/device/availability.h"
#include "flint/device/session_generator.h"
#include "flint/fl/fedavg.h"
#include "flint/fl/fedbuff.h"
#include "flint/util/table.h"

namespace flint::bench {

/// The paper's strict participation criteria (§4.1): foreground app,
/// battery > 80%, WiFi, and a modern OS.
inline device::AvailabilityCriteria strict_criteria() {
  device::AvailabilityCriteria c;
  c.require_wifi = true;
  c.min_battery_pct = 80.0;
  c.require_foreground = true;
  c.min_os_release = 201909;
  return c;
}

/// Two-week synthetic session log sized for bench runtimes.
inline device::SessionLog two_week_log(const device::DeviceCatalog& catalog, std::size_t clients,
                                       util::Rng& rng) {
  device::SessionGeneratorConfig cfg;
  cfg.clients = clients;
  cfg.days = 14;
  return device::generate_sessions(cfg, catalog, rng);
}

/// Print a section header followed by the reproduction context line.
inline void print_header(const std::string& title, const std::string& context) {
  std::cout << "\n" << util::banner(title);
  if (!context.empty()) std::cout << context << "\n\n";
}

/// "paper X vs measured Y" comparison line.
inline void print_compare(const std::string& what, const std::string& paper,
                          const std::string& measured) {
  std::cout << "  " << what << ": paper=" << paper << "  measured=" << measured << "\n";
}

/// Format seconds as a human-scale duration (the paper mixes hrs and days).
inline std::string human_duration(double seconds) {
  char buf[64];
  if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds < 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.2f hrs", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f days", seconds / 86400.0);
  }
  return buf;
}

}  // namespace flint::bench
