// Million-client capacity bench (DESIGN.md §17): model-free FedBuff over a
// streamed session trace, reporting simulated throughput (updates/s, events/s)
// and peak resident memory. The headline claim it guards: with
// `--mode stream`, peak RSS is bounded by the active-client working set —
// chunk spill buffers, merge read-back, and pooled per-client state — not by
// the population size. To make that measurable inside one process, the bench
// first runs a small preset (clients/8) and then the full population, and
// reports the peak-RSS growth ratio between them; a ratio near 1 means the
// extra 7/8ths of the population never became resident.
//
//   bench_scale                       # 1,000,000 clients, streaming
//   bench_scale --clients 100000      # CI-sized run (the checked-in baseline)
//   bench_scale --mode materialized   # the O(population) contrast
#include <fstream>
#include <sstream>

#include "bench_helpers.h"
#include "flint/device/session_stream.h"
#include "flint/util/check.h"

namespace {

using namespace flint;

struct ScaleOptions {
  std::size_t clients = 1'000'000;
  int days = 2;
  double sessions_per_day = 1.5;
  std::string mode = "stream";  // stream | materialized
  std::size_t chunk_clients = 16'384;
  std::string spill_dir;
  std::uint64_t seed = 17;
};

ScaleOptions parse_options(int argc, char** argv) {
  ScaleOptions o;
  for (int i = 1; i < argc; ++i) {
    auto has_value = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0 && i + 1 < argc; };
    if (has_value("--clients")) o.clients = std::strtoull(argv[i + 1], nullptr, 10);
    if (has_value("--days")) o.days = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    if (has_value("--sessions-per-day")) o.sessions_per_day = std::strtod(argv[i + 1], nullptr);
    if (has_value("--mode")) o.mode = argv[i + 1];
    if (has_value("--chunk-clients")) o.chunk_clients = std::strtoull(argv[i + 1], nullptr, 10);
    if (has_value("--spill-dir")) o.spill_dir = argv[i + 1];
    if (has_value("--seed")) o.seed = std::strtoull(argv[i + 1], nullptr, 10);
  }
  FLINT_CHECK_MSG(o.mode == "stream" || o.mode == "materialized",
                  "--mode must be stream or materialized, got " << o.mode);
  FLINT_CHECK_GT(o.clients, std::size_t{0});
  return o;
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 where the
/// proc filesystem is unavailable (non-linux), which also zeroes the
/// derived rss.* scalars so compare treats them as absent-but-equal.
double peak_rss_mib() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    double kib = 0.0;
    fields >> kib;
    return kib / 1024.0;
  }
#endif
  return 0.0;
}

/// Counts windows the scheduler actually pulled — the event-stream length.
class CountingWindowStream : public device::WindowStream {
 public:
  explicit CountingWindowStream(device::WindowStream& inner) : inner_(&inner) {}

  std::optional<device::AvailabilityWindow> next() override {
    auto w = inner_->next();
    if (w.has_value()) ++count_;
    return w;
  }

  std::uint64_t count() const { return count_; }

 private:
  device::WindowStream* inner_;
  std::uint64_t count_ = 0;
};

struct ScaleRun {
  fl::RunResult result;
  std::uint64_t windows_streamed = 0;
  double wall_s = 0.0;
};

/// One model-free FedBuff run over `clients` — the workload both presets and
/// both modes share, so every number the artifact reports is comparable.
ScaleRun run_population(const ScaleOptions& opt, std::size_t clients, std::size_t threads,
                        const device::DeviceCatalog& catalog,
                        const net::BandwidthModel& bandwidth) {
  device::SessionStreamConfig stream_cfg;
  stream_cfg.generator.clients = clients;
  stream_cfg.generator.days = opt.days;
  stream_cfg.generator.sessions_per_day = opt.sessions_per_day;
  stream_cfg.clients_per_chunk = opt.chunk_clients;
  stream_cfg.spill_dir = opt.spill_dir;

  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  criteria.min_session_s = 60.0;

  fl::AsyncConfig cfg;
  cfg.inputs.threads = threads;
  cfg.inputs.model_free = true;
  // |D_k| as a pure function of client id: nothing per-client materializes.
  cfg.inputs.example_count_fn = [](std::uint64_t c) { return std::size_t{50} + c % 100; };
  cfg.inputs.catalog = &catalog;
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.duration.base_time_per_example_s = 0.02;
  cfg.inputs.duration.update_bytes = 1'000'000;
  cfg.inputs.reparticipation_gap_s = 6.0 * 3600.0;
  cfg.inputs.max_rounds = 200;
  cfg.inputs.seed = opt.seed;
  cfg.buffer_size = 64;
  cfg.max_concurrency = 256;
  cfg.max_staleness = 100;

  auto wall_start = std::chrono::steady_clock::now();
  ScaleRun out;
  util::Rng rng(opt.seed);
  if (opt.mode == "stream") {
    auto sessions = device::make_session_stream(stream_cfg, catalog, rng);
    device::SessionWindowStream windows(*sessions, criteria, catalog);
    CountingWindowStream counted(windows);
    cfg.inputs.window_stream = &counted;
    out.result = fl::run_fedbuff(cfg);
    out.windows_streamed = counted.count();
  } else {
    auto log = device::generate_sessions(stream_cfg.generator, catalog, rng);
    auto trace = device::build_availability(log, criteria, catalog);
    device::TraceWindowStream windows(trace);
    CountingWindowStream counted(windows);
    cfg.inputs.window_stream = &counted;
    out.result = fl::run_fedbuff(cfg);
    out.windows_streamed = counted.count();
  }
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "scale");
  bench::BenchTelemetry telemetry(argc, argv);
  ScaleOptions opt = parse_options(argc, argv);
  std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_header("Scale-out: population size vs resident memory (DESIGN.md §17)",
                      "Model-free FedBuff, buffer 64, concurrency 256, " + opt.mode +
                          " trace of " + std::to_string(opt.clients) + " clients over " +
                          std::to_string(opt.days) + " days");

  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;

  // Small preset first: VmHWM is a process-lifetime high-water mark, so
  // running small before full makes the two readings a growth measurement.
  std::size_t small_clients = std::max<std::size_t>(1, opt.clients / 8);
  ScaleRun small = run_population(opt, small_clients, threads, catalog, bandwidth);
  double small_peak = peak_rss_mib();
  ScaleRun full = run_population(opt, opt.clients, threads, catalog, bandwidth);
  double full_peak = peak_rss_mib();

  const fl::RunResult& r = full.result;
  double updates_per_s_wall = full.wall_s > 0.0 ? r.metrics.updates_aggregated() / full.wall_s : 0.0;
  double events_per_s_wall = full.wall_s > 0.0 ? r.events_executed / full.wall_s : 0.0;

  util::Table t({"POPULATION", "WINDOWS", "TASKS", "UPDATES", "EVENTS", "WALL (s)", "PEAK RSS (MiB)"});
  t.add_row({util::Table::count(static_cast<std::int64_t>(small_clients)),
             util::Table::count(static_cast<std::int64_t>(small.windows_streamed)),
             util::Table::count(static_cast<std::int64_t>(small.result.metrics.tasks_started())),
             util::Table::count(static_cast<std::int64_t>(small.result.metrics.updates_aggregated())),
             util::Table::count(static_cast<std::int64_t>(small.result.events_executed)),
             util::Table::num(small.wall_s, 1), util::Table::num(small_peak, 1)});
  t.add_row({util::Table::count(static_cast<std::int64_t>(opt.clients)),
             util::Table::count(static_cast<std::int64_t>(full.windows_streamed)),
             util::Table::count(static_cast<std::int64_t>(r.metrics.tasks_started())),
             util::Table::count(static_cast<std::int64_t>(r.metrics.updates_aggregated())),
             util::Table::count(static_cast<std::int64_t>(r.events_executed)),
             util::Table::num(full.wall_s, 1), util::Table::num(full_peak, 1)});
  std::cout << t.render();

  double growth = small_peak > 0.0 ? full_peak / small_peak : 0.0;
  bench::print_compare("peak RSS growth at 8x population", "~1x (stream mode)",
                       util::Table::num(growth, 2) + "x");

  // Deterministic scalars: pure functions of (seed, config), compared at the
  // tight default threshold.
  artifact.add_scalar("clients", static_cast<double>(opt.clients));
  artifact.add_scalar("windows_streamed", static_cast<double>(full.windows_streamed));
  artifact.add_scalar("tasks_dispatched", static_cast<double>(r.metrics.tasks_started()));
  artifact.add_scalar("updates_aggregated", static_cast<double>(r.metrics.updates_aggregated()));
  artifact.add_scalar("events_executed", static_cast<double>(r.events_executed));
  artifact.add_scalar("updates_per_s_virtual", r.updates_per_second());
  // Wall-clock rates (machine-dependent; CI compares with rate.* loosened).
  artifact.add_scalar("rate.updates_per_s_wall", updates_per_s_wall);
  artifact.add_scalar("rate.events_per_s_wall", events_per_s_wall);
  // Memory scalars (machine- and allocator-dependent; CI loosens rss.* too,
  // but growth_ratio is the one that guards the headline claim).
  artifact.add_scalar("rss.small_peak_mib", small_peak);
  artifact.add_scalar("rss.full_peak_mib", full_peak);
  artifact.add_scalar("rss.growth_ratio", growth);
  artifact.set_run(r, "none (model-free)");
  // --mode / --chunk-clients / --spill-dir trade memory and wall time only —
  // results are bit-identical (the scale_smoke gate) — so like --threads
  // they stay out of the config fingerprint.
  artifact.set_config_text("scale: " + std::to_string(opt.clients) + " clients, " +
                           std::to_string(opt.days) + " days, buffer 64, " +
                           "concurrency 256, seed " + std::to_string(opt.seed));
  return 0;
}
