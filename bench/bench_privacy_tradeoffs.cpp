// Privacy & communication trade-off sweeps (paper §3.6: "our experimental
// framework can help developers and security experts evaluate the model and
// resource trade-offs of techniques like FL with differential privacy ...
// [and] secure aggregation"). Two sweeps:
//   (1) FL-DP: noise multiplier vs final AUPR and the epsilon budget;
//   (2) update compression: payload bytes vs final AUPR and comm time.
#include "bench_helpers.h"

#include "flint/privacy/dp.h"
#include "flint/util/stats.h"

namespace {

using namespace flint;

struct Workbench {
  data::FederatedTask task;
  device::DeviceCatalog catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  std::vector<device::AvailabilityWindow> windows;
  std::size_t threads = 1;  // --threads; wall-time only

  explicit Workbench(util::Rng& rng)
      : task([&] {
          data::SyntheticTaskConfig cfg;
          cfg.domain = data::Domain::kAds;
          cfg.clients = 300;
          cfg.mean_records = 30;
          cfg.std_records = 40;
          cfg.max_records = 600;
          cfg.dense_dim = 12;
          cfg.test_examples = 2500;
          return data::make_synthetic_task(cfg, rng);
        }()) {
    for (std::size_t c = 0; c < 300; ++c)
      windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});
  }

  fl::AsyncConfig base_config(ml::Model& model, const device::AvailabilityTrace& trace) {
    fl::AsyncConfig cfg;
    cfg.inputs.threads = threads;
    cfg.inputs.dataset = &task.train;
    cfg.inputs.dense_dim = task.batch_dense_dim();
    cfg.inputs.model_template = &model;
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &catalog;
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.test = &task.test;
    cfg.inputs.domain = task.config.domain;
    cfg.inputs.local.loss = task.loss_kind();
    cfg.inputs.local.clip_norm = 1.0;
    cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
    cfg.inputs.max_rounds = 60;
    cfg.inputs.reparticipation_gap_s = 0.0;
    cfg.buffer_size = 10;
    cfg.max_concurrency = 25;
    return cfg;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArtifact artifact(argc, argv, "privacy_tradeoffs");
  artifact.set_config_text("privacy: DP noise sweep + compression sweep, seed 1013");
  bench::print_header("Privacy & communication trade-offs (paper Section 3.6)",
                      "FL-DP noise sweep and update-compression sweep on an ads-like "
                      "task; median of 3 trials per cell");

  util::Rng rng(1013);
  Workbench wb(rng);
  wb.threads = bench::parse_threads(argc, argv);
  auto model = wb.task.make_model(rng);

  // --- Sweep 1: FL-DP. -----------------------------------------------------
  std::cout << util::banner("FL-DP: noise multiplier vs model quality and epsilon");
  util::Table dp_table({"NOISE MULT.", "AUPR (median)", "EPSILON @ 60 rounds (q=3%)"});
  for (double noise : {0.0, 0.3, 0.6, 1.0, 2.0}) {
    std::vector<double> metrics;
    for (int trial = 0; trial < 3; ++trial) {
      device::AvailabilityTrace trace(wb.windows);
      auto cfg = wb.base_config(*model, trace);
      cfg.inputs.seed = 100 + static_cast<std::uint64_t>(trial);
      if (noise > 0.0) {
        privacy::DpConfig dp;
        dp.clip_norm = 1.0;
        dp.noise_multiplier = noise;
        cfg.inputs.dp = dp;
      }
      metrics.push_back(fl::run_fedbuff(cfg).final_metric);
    }
    std::string epsilon = "no DP";
    if (noise > 0.0) {
      privacy::DpConfig dp;
      dp.noise_multiplier = noise;
      privacy::DpAccountant accountant(dp, 10.0 / 300.0);
      accountant.record_rounds(60);
      epsilon = util::Table::num(accountant.epsilon(), 3);
    }
    artifact.add_scalar("dp_aupr.noise_" + std::to_string(static_cast<int>(noise * 10)),
                        util::median(metrics));
    dp_table.add_row({util::Table::num(noise, 1), util::Table::num(util::median(metrics), 4),
                      epsilon});
  }
  std::cout << dp_table.render();
  std::cout << "Expected shape: quality degrades smoothly as noise grows while the\n"
               "epsilon budget tightens — the platform quantifies the trade.\n\n";

  // --- Sweep 2: update compression. ---------------------------------------
  std::cout << util::banner("Update compression: payload vs quality and comm time");
  util::Table c_table({"SCHEME", "UPDATE BYTES", "AUPR (median)", "MEAN ROUND (s)"});
  struct Scheme {
    const char* name;
    compress::CompressionConfig config;
  };
  std::vector<Scheme> schemes = {
      {"raw float32", {}},
      {"int8 quantized", {.kind = compress::CompressionKind::kInt8}},
      {"top-25% sparsified",
       {.kind = compress::CompressionKind::kTopK, .top_k_fraction = 0.25}},
      {"top-5% sparsified",
       {.kind = compress::CompressionKind::kTopK, .top_k_fraction = 0.05}},
  };
  for (const auto& scheme : schemes) {
    std::vector<double> metrics, rounds;
    std::size_t bytes =
        compress::compressed_bytes(model->parameter_count(), scheme.config);
    for (int trial = 0; trial < 3; ++trial) {
      device::AvailabilityTrace trace(wb.windows);
      auto cfg = wb.base_config(*model, trace);
      cfg.inputs.seed = 200 + static_cast<std::uint64_t>(trial);
      cfg.inputs.compression = scheme.config;
      cfg.inputs.duration.update_bytes = bytes;
      auto r = fl::run_fedbuff(cfg);
      metrics.push_back(r.final_metric);
      rounds.push_back(r.metrics.mean_round_duration_s());
    }
    std::string key(scheme.name);
    for (char& c : key)
      if (c == ' ' || c == '-' || c == '%') c = '_';
    artifact.add_scalar("compression_aupr." + key, util::median(metrics));
    artifact.add_scalar("compression_bytes." + key, static_cast<double>(bytes));
    c_table.add_row({scheme.name, util::Table::count(static_cast<std::int64_t>(bytes)),
                     util::Table::num(util::median(metrics), 4),
                     util::Table::num(util::median(rounds), 2)});
  }
  std::cout << c_table.render();
  std::cout << "Expected shape: int8 is nearly free; aggressive sparsification trades\n"
               "quality for a much smaller TEE/network footprint.\n";
  return 0;
}
