// Figure 1 reproduction: distribution of iOS-based vs Android-based device
// models in the user base. The figure's point: Android hardware is much more
// diverse than iOS hardware, making compute capability hard to estimate.
#include "bench_helpers.h"

#include "flint/device/hardware_distribution.h"

namespace {

void print_distribution(const flint::device::HardwareDistribution& dist,
                        std::size_t legend_size) {
  using flint::util::Table;
  Table t({"DEVICE MODEL", "SHARE"});
  for (std::size_t i = 0; i < std::min(legend_size, dist.shares.size()); ++i)
    t.add_row({dist.shares[i].name, Table::pct(dist.shares[i].share)});
  t.add_row({"(other devices — gray region)", Table::pct(dist.other_share(legend_size))});
  std::cout << t.render();
  std::cout << "  entropy=" << Table::num(dist.entropy_bits, 2)
            << " bits, top-3 coverage=" << Table::pct(dist.top3_share) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig1_hardware_dist");
  bench::print_header("Figure 1: Hardware distribution of the user base (iOS vs Android)",
                      "Sampled from 200k synthetic users per OS; legend shows top models");

  util::Rng rng(1006);
  auto catalog = device::DeviceCatalog::standard();

  std::cout << "-- iOS --\n";
  auto ios = device::sampled_hardware_distribution(catalog, device::Os::kIos, 200'000, rng);
  print_distribution(ios, 6);

  std::cout << "-- Android --\n";
  auto android =
      device::sampled_hardware_distribution(catalog, device::Os::kAndroid, 200'000, rng);
  print_distribution(android, 6);

  artifact.set_config_text("fig1: 200k users per OS, standard catalog, seed 1006");
  artifact.add_scalar("entropy_bits.ios", ios.entropy_bits);
  artifact.add_scalar("entropy_bits.android", android.entropy_bits);
  artifact.add_scalar("top3_share.ios", ios.top3_share);
  artifact.add_scalar("top3_share.android", android.top3_share);
  bench::print_compare("diversity ordering", "Android >> iOS (Figure 1)",
                       std::string("Android ") + util::Table::num(android.entropy_bits, 2) +
                           " bits vs iOS " + util::Table::num(ios.entropy_bits, 2) + " bits");
  return 0;
}
