// Figure 10 reproduction: AUPR of an ads-like model trained with two
// exponential-decay learning-rate schedules, N=5 trials each. The paper's
// point: model performance under random client sampling can be highly
// variable, and a good LR schedule improves training stability.
#include "bench_helpers.h"

#include <map>

#include "flint/util/stats.h"

int main(int argc, char** argv) {
  using namespace flint;
  bench::BenchArtifact artifact(argc, argv, "fig10_lr_schedules");
  std::size_t threads = bench::parse_threads(argc, argv);
  bench::print_header("Figure 10: AUPR under two exponential-decay LR schedules (N=5)",
                      "Real SGD on the ads-like proxy; per-round AUPR mean +- stdev "
                      "across trials");

  util::Rng rng(1012);
  data::SyntheticTaskConfig tcfg;
  tcfg.domain = data::Domain::kAds;
  tcfg.clients = 400;
  tcfg.mean_records = 30;
  tcfg.std_records = 90;
  tcfg.max_records = 1200;
  tcfg.label_ratio = 0.28;
  tcfg.heterogeneity = 0.8;  // strong heterogeneity drives the instability
  tcfg.dense_dim = 16;
  tcfg.test_examples = 2500;
  auto task = data::make_synthetic_task(tcfg, rng);

  auto catalog = device::DeviceCatalog::standard();
  net::PufferLikeBandwidthModel bandwidth;
  std::vector<device::AvailabilityWindow> windows;
  for (std::size_t c = 0; c < tcfg.clients; ++c)
    windows.push_back({c, catalog.sample_device(rng), 0.0, 1e10});

  struct Schedule {
    const char* name;
    fl::LrSchedule lr;
  };
  // "Good": trains fast, then decays — stable. "Aggressive": far too hot
  // with near-no decay — unstable under heterogeneous client sampling.
  std::vector<Schedule> schedules = {
      {"good: 0.40 * 0.80^(r/15)", fl::LrSchedule::exponential_decay(0.40, 0.80, 15)},
      {"aggressive: 3.0 * 0.995^(r/15)", fl::LrSchedule::exponential_decay(3.0, 0.995, 15)},
  };

  constexpr std::uint64_t kRounds = 60;
  constexpr std::uint64_t kEvalEvery = 5;
  constexpr int kTrials = 5;

  std::size_t schedule_idx = 0;
  for (const auto& schedule : schedules) {
    // round -> metric per trial.
    std::map<std::uint64_t, std::vector<double>> curves;
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Rng model_rng(500 + static_cast<std::uint64_t>(trial));
      auto model = task.make_model(model_rng);
      device::AvailabilityTrace trace(windows);
      fl::AsyncConfig cfg;
      cfg.inputs.threads = threads;
      cfg.inputs.dataset = &task.train;
      cfg.inputs.dense_dim = task.batch_dense_dim();
      cfg.inputs.model_template = model.get();
      cfg.inputs.trace = &trace;
      cfg.inputs.catalog = &catalog;
      cfg.inputs.bandwidth = &bandwidth;
      cfg.inputs.test = &task.test;
      cfg.inputs.domain = task.config.domain;
      cfg.inputs.local.loss = task.loss_kind();
      cfg.inputs.client_lr = schedule.lr;
      cfg.inputs.duration.base_time_per_example_s = 61.81 / 5000.0;
      cfg.inputs.duration.update_bytes = 760'000;
      cfg.inputs.max_rounds = kRounds;
      cfg.inputs.eval_every_rounds = kEvalEvery;
      cfg.inputs.reparticipation_gap_s = 0.0;
      cfg.inputs.seed = 900 + static_cast<std::uint64_t>(trial);
      cfg.buffer_size = 10;
      cfg.max_concurrency = 30;
      fl::RunResult r = fl::run_fedbuff(cfg);
      for (const auto& point : r.eval_curve) curves[point.round].push_back(point.metric);
      if (schedule_idx == 0 && trial == 0) artifact.set_run(r, "AUPR");
      artifact.add_scalar("final_aupr.schedule_" + std::to_string(schedule_idx) + ".trial_" +
                              std::to_string(trial),
                          r.final_metric);
    }
    std::cout << "schedule " << schedule.name << ":\n  round:  ";
    for (const auto& [round, _] : curves) std::printf("%8llu", static_cast<unsigned long long>(round));
    std::cout << "\n  mean:   ";
    std::vector<double> stdevs;
    for (const auto& [_, metrics] : curves) {
      auto s = util::summarize(metrics);
      std::printf("%8.4f", s.mean);
      stdevs.push_back(s.stddev);
    }
    std::cout << "\n  stdev:  ";
    for (double s : stdevs) std::printf("%8.4f", s);
    double mean_stdev = util::summarize(stdevs).mean;
    std::printf("\n  mean trial-to-trial stdev over rounds: %.4f\n\n", mean_stdev);
    artifact.add_scalar("mean_stdev.schedule_" + std::to_string(schedule_idx), mean_stdev);
    ++schedule_idx;
  }
  artifact.set_config_text("fig10: ads proxy, 400 clients, fedbuff, 5 trials, seed 1012");
  std::cout << "Paper's observation to check: the good schedule's curves are tighter\n"
               "(lower stdev band) and end higher than the aggressive schedule's.\n";
  return 0;
}
