// The advertising case study (paper §4.1), end to end:
//   1. define conservative participation criteria and generate traces;
//   2. build a client-level down-sampled proxy with natural partitioning;
//   3. select a mobile-ready model (size budget, vocab-vs-hashing tradeoff);
//   4. evaluate systems + model performance under FedBuff with 5 trials;
//   5. check the TEE bandwidth budget for secure aggregation.
//
// Run: ./build/examples/ads_case_study
#include <iostream>

#include "flint/core/fairness.h"
#include "flint/core/platform.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/feature/feature_hashing.h"
#include "flint/feature/vocab.h"
#include "flint/net/bandwidth_model.h"
#include "flint/privacy/secure_agg.h"

int main() {
  using namespace flint;
  core::FlintPlatform platform(7);
  std::cout << "=== Ads case study (paper Section 4.1) ===\n\n";

  // -- 1. Client participation and availability. ---------------------------
  // Conservative criteria: foreground app, battery > 80%, WiFi.
  device::SessionGeneratorConfig sessions;
  sessions.clients = 800;
  sessions.days = 14;  // two weeks: usage has weekly periodicity
  sessions.mean_session_s = 2000.0;
  auto log = platform.generate_session_log(sessions);

  device::AvailabilityCriteria criteria;
  criteria.require_foreground = true;
  criteria.min_battery_pct = 80.0;
  criteria.require_wifi = true;
  auto trace = platform.build_availability(log, criteria);
  std::cout << "[availability] " << device::criteria_pass_fraction(log, criteria,
                                                                   platform.devices()) * 100.0
            << "% of session time eligible; " << trace.window_count() << " windows from "
            << trace.client_count() << " clients\n";

  // -- 2. Proxy dataset: natural partitioning by member id, client-level
  //       down-sampling preserving quantity and label skew. ----------------
  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kAds;
  task_cfg.clients = 800;
  task_cfg.mean_records = 40;
  task_cfg.std_records = 150;  // "std of 667, max of 39,731" at production scale
  task_cfg.max_records = 2000;
  task_cfg.label_ratio = 0.28;
  task_cfg.heterogeneity = 0.6;
  auto task = data::make_synthetic_task(task_cfg, platform.rng());

  // Register the proxy in the data catalog with its FL metadata.
  data::ProxyConfig proxy_cfg;
  proxy_cfg.name = "ads-proxy";
  proxy_cfg.lookback_days = 90;
  auto records = task.train.to_centralized();
  std::size_t cursor = 0;
  std::vector<std::uint64_t> owner(records.size());
  for (const auto& client : task.train.clients())
    for (std::size_t i = 0; i < client.size(); ++i) owner[cursor++] = client.client_id;
  auto entry = platform.generate_proxy(records, proxy_cfg,
                                       [&](std::size_t i) { return owner[i]; });
  std::cout << "[proxy] " << entry.stats.to_string() << "\n";

  // -- 3. Mobile-ready model selection. ------------------------------------
  // SDK-distributed models must be < 1MB; Model B fits at 0.76MB and has the
  // smallest network+memory footprint of the candidates.
  std::cout << "[model selection]\n";
  for (char id : {'A', 'B', 'C'}) {
    const auto& spec = ml::model_spec(id);
    bool fits_sdk = spec.calibration.storage_mb < 1.0;
    std::cout << "  Model " << id << ": " << spec.calibration.storage_mb << "MB storage, "
              << spec.calibration.network_mb << "MB network -> "
              << (fits_sdk ? "fits" : "exceeds") << " the <1MB SDK budget\n";
  }
  // Vocab files vs feature hashing for the 70%-categorical feature space.
  std::vector<std::pair<std::string, std::uint64_t>> freqs;
  for (int i = 0; i < 40'000; ++i)
    freqs.push_back({"cat_" + std::to_string(i), static_cast<std::uint64_t>(40'000 - i)});
  auto vocab = feature::Vocab::build(freqs, 40'000);
  std::cout << "  vocab asset would cost " << vocab.asset_bytes() / 1e6
            << "MB on device; hashing into 2^16 buckets costs 0MB at "
            << feature::expected_collision_rate(40'000, 1 << 16) * 100.0
            << "% expected collisions\n";

  // -- 4. Systems and model performance (5 trials, like the paper). --------
  auto model = task.make_model(platform.rng());
  net::PufferLikeBandwidthModel bandwidth;
  fl::AsyncConfig cfg;
  cfg.inputs.dataset = &task.train;
  cfg.inputs.dense_dim = task.batch_dense_dim();
  cfg.inputs.model_template = model.get();
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &platform.devices();
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.test = &task.test;
  cfg.inputs.domain = task.config.domain;
  cfg.inputs.local.loss = task.loss_kind();
  cfg.inputs.local.clip_norm = 1.0;
  cfg.inputs.client_lr = fl::LrSchedule::exponential_decay(0.1, 0.85, 25);
  cfg.inputs.duration = fl::TaskDurationModel::from_spec(ml::model_spec('B'), 1);
  cfg.inputs.max_rounds = 80;
  cfg.buffer_size = 10;
  cfg.max_concurrency = 30;

  core::ForecastConfig forecast_cfg;
  forecast_cfg.update_bytes = 760'000;
  auto result = platform.evaluate_case_study(task, cfg, /*trials=*/5,
                                             /*centralized_epochs=*/6, forecast_cfg);
  std::cout << "[evaluation] centralized AUPR " << result.centralized_metric
            << " vs FL median " << result.fl_metric << " (" << result.performance_diff_pct
            << "%); projected " << result.projected_training_h / 24.0 << " days of training\n";
  std::cout << "  (the ads domain tolerates up to 5% loss for the compliance win)\n";

  // -- 4b. Fairness across device tiers (§3.2): would the hardware criteria
  //        bias model quality against users of older phones? ----------------
  {
    auto best_model = task.make_model(platform.rng());
    std::size_t best = 0;
    for (std::size_t i = 1; i < result.fl_trials.trials.size(); ++i)
      if (result.fl_trials.trials[i].final_metric >
          result.fl_trials.trials[best].final_metric)
        best = i;
    best_model->set_flat_parameters(result.fl_trials.trials[best].final_parameters);
    core::FairnessReport fairness =
        core::evaluate_fairness(*best_model, task, log.client_device, platform.devices());
    std::cout << "[fairness] " << fairness.to_string() << "\n"
              << "  gate: tier gap <= 0.05 AUPR -> "
              << (fairness.fair_within(0.05) ? "PASS" : "RELAX HARDWARE CRITERIA") << "\n";
  }

  // -- 5. Security and privacy: TEE bandwidth budget. ----------------------
  privacy::TeeSecureAggregator tee(privacy::TeeConfig{}, 1);
  double mbps = tee.required_mbytes_per_s(result.forecast.updates_per_second, 760'000);
  std::cout << "[security] TEE ingress needed: " << mbps << " MB/s -> "
            << (tee.within_capacity(result.forecast.updates_per_second, 760'000)
                    ? "within" : "OVER")
            << " the enclave limit (paper projects <3MB/s)\n"
            << "  note: SDK distribution opens a hub-and-spoke poisoning surface —\n"
            << "  the host app controlling many participants; flagged for review.\n";
  return 0;
}
