// The messaging case study (paper §4.2): abuse detection over end-to-end
// encrypted message data. Demonstrates:
//   * partitioning synthetic message data without decryption;
//   * the text-embedding size problem (500MB -> 10MB via vocab + dim cuts);
//   * FL-vs-centralized parity evaluation;
//   * the robustness/poisoning considerations the paper raises.
//
// Run: ./build/examples/messaging_case_study
#include <iostream>

#include "flint/core/platform.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/net/bandwidth_model.h"
#include "flint/privacy/dp.h"

namespace {

/// Size of a [vocab x dim] float32 embedding table in MB.
double embedding_mb(std::size_t vocab, std::size_t dim) {
  return static_cast<double>(vocab) * static_cast<double>(dim) * sizeof(float) / 1e6;
}

}  // namespace

int main() {
  using namespace flint;
  core::FlintPlatform platform(11);
  std::cout << "=== Messaging case study (paper Section 4.2) ===\n\n";

  // -- Text embedding sizing (the paper's 60-fold reduction). --------------
  std::cout << "[embedding sizing]\n";
  std::cout << "  centralized model: 500k words x 300 dims = "
            << embedding_mb(500'000, 300) << " MB -> prohibits on-device deployment\n";
  std::cout << "  reduced model:     50k words x 50 dims  = " << embedding_mb(50'000, 50)
            << " MB -> fits the 10MB app-size constraint ("
            << embedding_mb(500'000, 300) / embedding_mb(50'000, 50) << "-fold reduction)\n\n";

  // -- Proxy without decryption: synthetic messages partitioned per user. --
  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kMessaging;
  task_cfg.clients = 1500;
  task_cfg.mean_records = 50;
  task_cfg.std_records = 80;
  task_cfg.label_ratio = 0.05;  // abusive messages are rare
  task_cfg.vocab = 400;
  task_cfg.heterogeneity = 0.35;
  auto task = data::make_synthetic_task(task_cfg, platform.rng());
  std::cout << "[proxy] " << task.train.client_count() << " clients, "
            << task.train.example_count() << " synthetic messages, positive rate ~5%\n";

  // -- Availability & training. --------------------------------------------
  device::SessionGeneratorConfig sessions;
  sessions.clients = 1500;
  sessions.days = 14;
  sessions.mean_session_s = 1800.0;
  auto log = platform.generate_session_log(sessions);
  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  auto trace = platform.build_availability(log, criteria);

  auto model = task.make_model(platform.rng());
  net::PufferLikeBandwidthModel bandwidth;
  fl::AsyncConfig cfg;
  cfg.inputs.dataset = &task.train;
  cfg.inputs.dense_dim = task.batch_dense_dim();
  cfg.inputs.model_template = model.get();
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &platform.devices();
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.test = &task.test;
  cfg.inputs.domain = task.config.domain;
  cfg.inputs.local.loss = task.loss_kind();
  // Rare-positive token tasks converge slowly under buffered-async FL:
  // a large buffer smooths the sparse-embedding gradients and a raised
  // server LR compensates the buffer's dilution of per-token updates.
  cfg.inputs.local.lr = 0.3;
  cfg.inputs.local.epochs = 3;
  cfg.inputs.local.clip_norm = 1.0;
  cfg.inputs.client_lr = fl::LrSchedule::exponential_decay(0.3, 0.9, 200);
  cfg.inputs.server_lr = 3.0;
  cfg.inputs.duration.base_time_per_example_s = 9.0 / 5000.0;
  cfg.inputs.duration.local_epochs = 3;
  cfg.inputs.duration.update_bytes = 120'000;
  cfg.inputs.max_rounds = 450;
  cfg.inputs.reparticipation_gap_s = 600.0;
  cfg.buffer_size = 20;
  cfg.max_concurrency = 80;

  core::ForecastConfig forecast;
  forecast.update_bytes = 120'000;
  auto result =
      platform.evaluate_case_study(task, cfg, /*trials=*/3, /*centralized_epochs=*/6, forecast);
  std::cout << "[evaluation] centralized AUPR " << result.centralized_metric
            << " vs FL median " << result.fl_metric << " (" << result.performance_diff_pct
            << "%)\n"
            << "  (paper reports -0.18%; the gap depends strongly on the proxy draw\n"
               "   and trial count — bench_table4_case_studies reproduces the\n"
               "   near-parity result with its tuned configuration)\n";
  std::cout << "  projected training: " << result.projected_training_h
            << " h (paper: 18.9 h); improved data freshness is the payoff\n\n";

  // -- Security notes from the paper, with the tools FLINT offers. ---------
  privacy::DpConfig dp;
  dp.clip_norm = 1.0;
  dp.noise_multiplier = 1.0;
  dp.delta = 1e-6;
  privacy::DpAccountant accountant(dp, /*sampling_rate=*/0.02);
  std::cout << "[privacy] with noise multiplier 1.0 and q=2%, the job can run "
            << accountant.rounds_until(4.0) << " rounds within an epsilon budget of 4\n";
  std::cout << "[security] poisoning requires an impractical coalition "
               "(Shejwalkar 2022); FLINT's client-selection criteria can further\n"
               "  require reputation/account-age signals, and continuous FL training\n"
               "  adapts to recent feedback (the paper's suggested mitigations).\n";
  return 0;
}
