// The search case study (paper §4.3): on-device ranking under sub-100ms
// latency budgets. Demonstrates:
//   * federated learning-to-rank with graded relevance and NDCG@10;
//   * the device-cloud feature catalog serving ranking features with
//     on-device caching (local candidate ranking without network calls);
//   * superuser quantity skew, as in advertising.
//
// Run: ./build/examples/search_case_study
#include <iostream>

#include "flint/core/platform.h"
#include "flint/device/device_store.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/feature/feature_catalog.h"
#include "flint/net/bandwidth_model.h"

int main() {
  using namespace flint;
  core::FlintPlatform platform(13);
  std::cout << "=== Search case study (paper Section 4.3) ===\n\n";

  // -- Device-cloud feature management for low-latency ranking. ------------
  // Document embeddings live in the cloud but are cached on device so that
  // frequent documents can be ranked locally with zero network round trips.
  platform.features().register_feature({.name = "search/query-context",
                                        .source = feature::FeatureSource::kDevice,
                                        .value_bytes = 64});
  platform.features().register_feature({.name = "search/doc-embedding",
                                        .source = feature::FeatureSource::kCloud,
                                        .value_bytes = 2048,
                                        .cacheable = true});
  feature::DeviceFeatureRuntime runtime(platform.features(), /*cache_bytes=*/256 * 1024,
                                        /*cloud_rtt_s=*/0.08, /*bandwidth_mbps=*/12.0);
  // A user re-ranks the same 40 frequent documents across 5 query sessions.
  for (int session = 0; session < 5; ++session)
    for (std::uint64_t doc = 0; doc < 40; ++doc) runtime.fetch("search/doc-embedding", doc);
  std::cout << "[feature catalog] " << runtime.stats().requests << " embedding fetches: "
            << runtime.stats().cloud_fetches << " over network, "
            << runtime.stats().cache_hits << " served from device cache ("
            << runtime.cache_stats().hit_rate() * 100.0 << "% hit rate); mean latency "
            << runtime.stats().total_latency_s / runtime.stats().requests * 1000.0 << " ms\n"
            << "  -> cached re-ranking stays well inside the sub-100ms budget\n\n";

  // -- On-device training data generation (Figure 6's "Device DB"). --------
  // Displayed candidates + user feedback are logged locally under a
  // retention policy; the FL task trains from this store.
  device::DeviceStoreConfig store_cfg;
  store_cfg.max_bytes = 64 * 1024;
  store_cfg.max_age_s = 7.0 * device::kSecondsPerDay;
  device::DeviceExampleStore store(store_cfg);
  util::Rng store_rng(99);
  for (int day = 0; day < 14; ++day) {
    for (int impression = 0; impression < 40; ++impression) {
      ml::Example e;
      e.dense.resize(12);
      for (float& v : e.dense) v = static_cast<float>(store_rng.normal());
      e.label = store_rng.bernoulli(0.2) ? 1.0f : 0.0f;  // user feedback
      store.log_example(std::move(e), day * device::kSecondsPerDay + impression * 60.0);
    }
  }
  double now = 14.0 * device::kSecondsPerDay;
  std::cout << "[device store] logged " << store.stats().logged << " impressions; "
            << store.training_view(now).size() << " trainable after the 7-day retention ("
            << store.stats().expired << " expired, " << store.stats().evicted_space
            << " evicted by the " << store_cfg.max_bytes / 1024 << "KB budget)\n\n";

  // -- Federated learning-to-rank. ------------------------------------------
  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kSearch;
  task_cfg.clients = 600;
  task_cfg.mean_records = 32;
  task_cfg.std_records = 90;  // "superusers" dominate, as in ads
  task_cfg.max_records = 1000;
  task_cfg.dense_dim = 12;
  task_cfg.candidates_per_group = 8;
  auto task = data::make_synthetic_task(task_cfg, platform.rng());
  std::cout << "[proxy] " << task.train.client_count() << " clients, "
            << task.train.example_count() << " candidates in "
            << task.train.example_count() / task_cfg.candidates_per_group
            << " ranking groups\n";

  device::SessionGeneratorConfig sessions;
  sessions.clients = 600;
  sessions.days = 14;
  sessions.mean_session_s = 1500.0;
  auto log = platform.generate_session_log(sessions);
  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  auto trace = platform.build_availability(log, criteria);

  auto model = task.make_model(platform.rng());
  net::PufferLikeBandwidthModel bandwidth;
  fl::AsyncConfig cfg;
  cfg.inputs.dataset = &task.train;
  cfg.inputs.dense_dim = task.batch_dense_dim();
  cfg.inputs.model_template = model.get();
  cfg.inputs.trace = &trace;
  cfg.inputs.catalog = &platform.devices();
  cfg.inputs.bandwidth = &bandwidth;
  cfg.inputs.test = &task.test;
  cfg.inputs.domain = task.config.domain;
  cfg.inputs.local.loss = task.loss_kind();  // pairwise ranking loss
  cfg.inputs.local.lr = 0.08;
  cfg.inputs.local.clip_norm = 1.0;
  cfg.inputs.duration.base_time_per_example_s = 3.26 / 5000.0;  // Model C profile
  cfg.inputs.duration.update_bytes = 60'000;
  cfg.inputs.max_rounds = 50;
  cfg.buffer_size = 8;
  cfg.max_concurrency = 40;

  core::ForecastConfig forecast;
  forecast.update_bytes = 60'000;
  auto result =
      platform.evaluate_case_study(task, cfg, /*trials=*/3, /*centralized_epochs=*/5, forecast);
  std::cout << "[evaluation] centralized NDCG@10 " << result.centralized_metric
            << " vs FL median " << result.fl_metric << " (" << result.performance_diff_pct
            << "% — paper reports -1.64%)\n"
            << "  projected training " << result.projected_training_h
            << " h; FL also removes the data-center store/ETL/retrain loop\n";
  return 0;
}
