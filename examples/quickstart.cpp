// FLINT quickstart: evaluate whether a small ads-style model is worth moving
// to cross-device federated learning — in about 80 lines.
//
//   1. Benchmark the candidate model across the device fleet.
//   2. Generate an availability trace from (synthetic) session logs under
//      participation criteria.
//   3. Build a federated proxy task and run simulated FedBuff training.
//   4. Compare against the centralized baseline and forecast resources.
//
// Build & run:  ./build/examples/quickstart
//
// Profiling: pass --trace-out trace.json to record a Chrome trace-event file
// (open in Perfetto / chrome://tracing; wall and virtual clocks are separate
// process tracks) plus a metrics JSONL dump (--metrics-out overrides its
// default path, quickstart_metrics.jsonl). With a multi-process transport
// (--transport unix|tcp), --trace-out names a *directory*: the leader and
// each spawned executor write their own trace into it, ready for
// tools/flint_trace_merge.py (DESIGN.md §15). --status-out streams live
// fleet status JSONL for tools/flint_top.py.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "flint/compress/quantize.h"
#include "flint/core/platform.h"
#include "flint/core/report.h"
#include "flint/core/run_artifact.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/fl/rpc_runtime.h"
#include "flint/ml/kernels/kernels.h"
#include "flint/net/bandwidth_model.h"
#include "flint/obs/telemetry.h"
#include "flint/store/checkpoint.h"

int main(int argc, char** argv) {
  using namespace flint;

  std::string trace_out;
  std::string metrics_out;
  std::string status_out;
  std::string artifact_out = "quickstart_report/run_artifact.json";
  std::string checkpoint_dir = "quickstart_report/checkpoints";
  std::uint64_t checkpoint_every = 10;
  bool explicit_checkpoint_dir = false;
  bool resume = false;
  std::size_t threads = 1;
  std::string transport = "inprocess";
  std::size_t rpc_executors = 2;
  std::string executor_bin;
  std::string rpc_dir = ".";
  std::string kernels_spec;
  std::string compression = "none";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--status-out") == 0 && i + 1 < argc) {
      status_out = argv[++i];
    } else if (std::strcmp(argv[i], "--artifact-out") == 0 && i + 1 < argc) {
      artifact_out = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
      explicit_checkpoint_dir = true;
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 && i + 1 < argc) {
      checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (threads == 0) threads = 1;
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      transport = argv[++i];
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transport = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--rpc-executors") == 0 && i + 1 < argc) {
      rpc_executors = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--executor-bin") == 0 && i + 1 < argc) {
      executor_bin = argv[++i];
    } else if (std::strcmp(argv[i], "--rpc-dir") == 0 && i + 1 < argc) {
      rpc_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--kernels") == 0 && i + 1 < argc) {
      kernels_spec = argv[++i];
    } else if (std::strncmp(argv[i], "--kernels=", 10) == 0) {
      kernels_spec = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--compression") == 0 && i + 1 < argc) {
      compression = argv[++i];
    } else if (std::strncmp(argv[i], "--compression=", 14) == 0) {
      compression = argv[i] + 14;
    } else {
      std::cerr << "usage: quickstart [--trace-out trace.json] [--metrics-out metrics.jsonl]"
                   " [--status-out status.jsonl]"
                   " [--artifact-out artifact.json] [--checkpoint-dir dir]"
                   " [--checkpoint-every N] [--resume] [--threads N]"
                   " [--transport inprocess|loopback|unix|tcp] [--rpc-executors N]"
                   " [--executor-bin path] [--rpc-dir dir]"
                   " [--kernels auto|scalar|avx2|neon] [--compression none|int8|topk]\n";
      return 2;
    }
  }
  // Pin the kernel path before any training work; the RPC runtime forwards
  // the spec to spawned executors so the fleet shares one set of numerics.
  if (!kernels_spec.empty()) {
    try {
      ml::kernels::set_path(kernels_spec);
    } catch (const util::CheckError& e) {
      std::cerr << "quickstart: " << e.what() << "\n";
      return 2;
    }
  }
  compress::CompressionConfig compression_cfg;
  if (compression == "int8") {
    compression_cfg.kind = compress::CompressionKind::kInt8;
  } else if (compression == "topk") {
    compression_cfg.kind = compress::CompressionKind::kTopK;
  } else if (compression != "none") {
    std::cerr << "quickstart: unknown --compression '" << compression
              << "' (expected none|int8|topk)\n";
    return 2;
  }
  // A checkpoint lineage belongs to one (seed, config) run, and the multi-
  // trial sweep varies the seed per trial — so an explicit store, or a
  // resume from one, pins the study to a single trial (DESIGN.md §12).
  const int trials = (resume || explicit_checkpoint_dir) ? 1 : 3;
  const fl::TransportKind transport_kind = fl::parse_transport(transport);
  const bool multiproc = transport_kind == fl::TransportKind::kUnix ||
                         transport_kind == fl::TransportKind::kTcp;
  const bool telemetry_on =
      !trace_out.empty() || !metrics_out.empty() || !status_out.empty();
  if (telemetry_on && metrics_out.empty()) metrics_out = "quickstart_metrics.jsonl";

  // Multi-process tracing fans out per process: --trace-out names a run
  // directory; the leader writes leader.trace.json and each executor child
  // writes executor-<i>.trace.json beside it (DESIGN.md §15).
  std::string trace_dir;
  std::string leader_trace_out = trace_out;
  if (multiproc && !trace_out.empty()) {
    trace_dir = trace_out;
    std::filesystem::create_directories(trace_dir);
    leader_trace_out = trace_dir + "/leader.trace.json";
  }

  obs::TelemetryConfig telemetry_cfg;
  telemetry_cfg.metrics_enabled = telemetry_on;
  telemetry_cfg.tracing_enabled = !trace_out.empty();
  telemetry_cfg.trace_out = leader_trace_out;
  telemetry_cfg.metrics_out = metrics_out;
  telemetry_cfg.status_out = status_out;
  obs::Telemetry telemetry(telemetry_cfg);
  // Ambient for the whole example so the pre-training sections (feature
  // cache replay below) record too, not just the FL trials.
  std::optional<obs::ScopedTelemetry> ambient;
  if (telemetry_on) ambient.emplace(&telemetry);

  core::FlintPlatform platform(/*seed=*/42);
  if (telemetry_on) platform.set_telemetry(&telemetry);

  // --- 1. On-device benchmark of the candidate architecture. -------------
  auto benchmark = platform.benchmark_model('B', /*records=*/5000);
  std::cout << "Model B fleet benchmark: mean " << benchmark.mean_time_s << "s (+-"
            << benchmark.stdev_time_s << "s) per 5000 records, mean CPU "
            << benchmark.mean_cpu_pct << "%\n";

  // --- 2. Availability under participation criteria. ---------------------
  device::SessionGeneratorConfig sessions;
  sessions.clients = 500;
  sessions.days = 14;
  sessions.mean_session_s = 1800.0;
  auto log = platform.generate_session_log(sessions);

  device::AvailabilityCriteria criteria;
  criteria.require_wifi = true;
  criteria.min_battery_pct = 80.0;
  auto trace = platform.build_availability(log, criteria);
  std::cout << "Availability: " << trace.client_count() << " of " << sessions.clients
            << " clients eligible across " << trace.window_count() << " windows\n";

  // --- 2b. Device-cloud feature plumbing (Figure 6): register the model's
  // features and replay a short access pattern so the report shows the
  // device-side cache behaviour the training rounds would see. -------------
  platform.features().register_feature({"member_embedding", feature::FeatureSource::kCloud,
                                        /*value_bytes=*/256, /*retention_days=*/30,
                                        /*cacheable=*/true});
  platform.features().register_feature({"session_context", feature::FeatureSource::kDevice,
                                        /*value_bytes=*/64});
  feature::DeviceFeatureRuntime features(platform.features(), /*cache_bytes=*/16 * 1024);
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t entity = 0; entity < 32; ++entity) {
      features.fetch("member_embedding", entity);
      features.fetch("session_context", entity);
    }
  const auto& cache = features.cache_stats();
  std::cout << "Feature cache: " << cache.hits << " hits / " << cache.misses << " misses\n";

  // --- 3. Federated proxy task + simulated async FL. ---------------------
  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kAds;
  task_cfg.clients = 500;
  task_cfg.label_ratio = 0.28;
  auto task = data::make_synthetic_task(task_cfg, platform.rng());
  auto model = task.make_model(platform.rng());

  net::PufferLikeBandwidthModel bandwidth;
  fl::AsyncConfig fl_cfg;
  // Parallel client training: results are bit-identical at any --threads
  // value, only the wall time changes (DESIGN.md §11).
  fl_cfg.inputs.threads = threads;
  fl_cfg.inputs.dataset = &task.train;
  fl_cfg.inputs.dense_dim = task.batch_dense_dim();
  fl_cfg.inputs.model_template = model.get();
  fl_cfg.inputs.trace = &trace;
  fl_cfg.inputs.catalog = &platform.devices();
  fl_cfg.inputs.bandwidth = &bandwidth;
  fl_cfg.inputs.test = &task.test;
  fl_cfg.inputs.domain = task.config.domain;
  fl_cfg.inputs.local.loss = task.loss_kind();
  fl_cfg.inputs.duration = fl::TaskDurationModel::from_spec(ml::model_spec('B'), 1);
  fl_cfg.inputs.max_rounds = 60;
  fl_cfg.inputs.compression = compression_cfg;
  fl_cfg.buffer_size = 10;
  fl_cfg.max_concurrency = 30;

  // Periodic leader checkpoints (§3.4 fault tolerance) — also what gives the
  // profiling run its checkpoint-latency series. With --resume the run
  // restarts from the newest valid checkpoint in the store and finishes
  // bit-identically to an uninterrupted run (DESIGN.md §12).
  store::CheckpointStore checkpoints(checkpoint_dir);
  fl_cfg.inputs.leader.checkpoint_every_rounds = checkpoint_every;
  fl_cfg.inputs.leader.checkpoint_store = &checkpoints;
  if (resume) fl_cfg.inputs.resume_from = &checkpoints;

  // Multi-process (or loopback) execution: training leases go to registered
  // executors instead of in-process threads. Like --threads, this changes
  // wall time only — the artifact stays bit-identical to inprocess, so the
  // config fingerprint above is untouched (DESIGN.md §14).
  fl::RpcRuntimeConfig rpc_cfg;
  rpc_cfg.kind = transport_kind;
  rpc_cfg.executors = rpc_executors;
  rpc_cfg.executor_bin = executor_bin;
  rpc_cfg.socket_dir = rpc_dir;
  rpc_cfg.trace_dir = trace_dir;
  fl::RpcRuntime rpc_runtime(rpc_cfg, fl_cfg.inputs);
  fl_cfg.inputs.rpc_leader = rpc_runtime.leader();

  // --- 4. FL vs centralized, with a resource forecast. --------------------
  core::ForecastConfig forecast;
  forecast.update_bytes = model->update_bytes();
  auto result = platform.evaluate_case_study(task, fl_cfg, trials,
                                             /*centralized_epochs=*/5, forecast);

  if (resume && !result.fl_trials.trials.empty() &&
      result.fl_trials.trials[0].resume_count > 0) {
    std::cout << "\nResumed from checkpoint round "
              << result.fl_trials.trials[0].resumed_from_round << " (resume #"
              << result.fl_trials.trials[0].resume_count << ")\n";
  }
  std::cout << "\nCentralized AUPR: " << result.centralized_metric
            << "\nFL AUPR (median of " << trials << (trials == 1 ? " trial): " : " trials): ")
            << result.fl_metric << " (stdev "
            << result.fl_metric_stdev << ")"
            << "\nPerformance difference: " << result.performance_diff_pct << "%"
            << "\nProjected training time: " << result.projected_training_h << " h"
            << "\nForecast: " << result.forecast.summary() << "\n";

  std::cout << "\nDecision hint: the paper accepts up to 5% AUPR loss for ads when\n"
               "FL removes centralized tracking; this run "
            << (result.performance_diff_pct > -5.0 ? "PASSES" : "FAILS")
            << " that bar.\n";

  // Ship the run into the shared monitoring/review tooling (Figure 3).
  std::size_t best = 0;
  for (std::size_t i = 1; i < result.fl_trials.trials.size(); ++i)
    if (result.fl_trials.trials[i].final_metric > result.fl_trials.trials[best].final_metric)
      best = i;
  core::ReportInputs report;
  report.title = "quickstart ads pilot";
  report.run = &result.fl_trials.trials[best];
  report.forecast = &result.forecast;
  report.centralized_metric = result.centralized_metric;
  report.metric_name = task.metric_name();
  std::string path = core::write_report("quickstart_report", report);
  std::cout << "Full report written to " << path << " (+ CSV series)\n";

  // Machine-readable twin of the report: the schema-versioned run artifact
  // that tools/flint_compare.py diffs across runs.
  core::RunArtifactInputs artifact;
  artifact.run = report.run;
  artifact.name = "quickstart";
  artifact.metric_name = task.metric_name();
  artifact.forecast = &result.forecast;
  // Compression is part of the config fingerprint: it changes the numerics
  // (lossy update round trip), unlike --threads/--transport/--kernels-on-a-
  // pinned-path which only change wall time.
  artifact.config_text =
      "quickstart: ads proxy, 500 clients, fedbuff, seed 42, compression=" + compression;
  artifact.scalars = {{"centralized_metric", result.centralized_metric},
                      {"fl_metric_median", result.fl_metric},
                      {"performance_diff_pct", result.performance_diff_pct}};
  core::write_run_artifact(artifact_out, artifact);
  std::cout << "Run artifact written to " << artifact_out << "\n";

  if (telemetry_on) {
    telemetry.snapshot_now();
    telemetry.export_all();
    std::cout << "Telemetry: " << telemetry.metrics().series_count() << " metric series";
    if (!metrics_out.empty()) std::cout << " -> " << metrics_out;
    if (!trace_out.empty())
      std::cout << "; " << telemetry.tracer().event_count() << " trace spans -> " << trace_out;
    if (!status_out.empty()) std::cout << "; live status -> " << status_out;
    std::cout << "\n";
  }
  return 0;
}
