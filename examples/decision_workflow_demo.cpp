// The decision workflow (paper Figure 9, §3.7), fully instrumented: every
// stage backed by the platform tool that measures it, producing a GO/NO-GO
// report for bringing an ads model to cross-device FL.
//
// Run: ./build/examples/decision_workflow_demo
#include <iostream>

#include "flint/core/decision_workflow.h"
#include "flint/core/platform.h"
#include "flint/data/synthetic_tasks.h"
#include "flint/net/bandwidth_model.h"
#include "flint/privacy/dp.h"

int main() {
  using namespace flint;
  core::FlintPlatform platform(17);
  std::cout << "=== Decision workflow demo (paper Figure 9) ===\n\n";

  // Shared state the stages build up.
  data::SyntheticTaskConfig task_cfg;
  task_cfg.domain = data::Domain::kAds;
  task_cfg.clients = 500;
  task_cfg.label_ratio = 0.28;
  task_cfg.std_records = 120;
  task_cfg.max_records = 1500;
  auto task = data::make_synthetic_task(task_cfg, platform.rng());
  device::AvailabilityTrace trace;
  core::CaseStudyResult evaluation;
  net::PufferLikeBandwidthModel bandwidth;

  core::DecisionWorkflow workflow;

  workflow.set_stage(core::Stage::kUnderstandClientData, [&] {
    core::StageReport r;
    auto stats = data::compute_stats(task.train, "ads-candidate", 90);
    r.measurements["clients"] = static_cast<double>(stats.client_population);
    r.measurements["avg_records"] = stats.avg_records;
    r.measurements["std_records"] = stats.std_records;
    r.measurements["label_ratio"] = stats.label_ratio;
    r.notes = "client data is non-IID and tail-heavy; proxy feasible";
    if (stats.avg_records < 1.0) {
      r.verdict = core::StageVerdict::kBlock;
      r.notes = "clients hold too little data to train locally";
    }
    return r;
  });

  workflow.set_stage(core::Stage::kDeviceBenchmark, [&] {
    core::StageReport r;
    auto report = platform.benchmark_model('B', 5000);
    r.measurements["mean_time_s"] = report.mean_time_s;
    r.measurements["worst_time_s"] = [&] {
      double worst = 0.0;
      for (const auto& d : report.per_device) worst = std::max(worst, d.train_time_s);
      return worst;
    }();
    r.measurements["storage_mb"] = ml::model_spec('B').calibration.storage_mb;
    if (ml::model_spec('B').calibration.storage_mb >= 1.0) {
      r.verdict = core::StageVerdict::kBlock;
      r.notes = "model exceeds the <1MB SDK budget";
    } else {
      r.notes = "Model B fits the SDK size budget; worst-case device impact acceptable";
    }
    return r;
  });

  workflow.set_stage(core::Stage::kAvailabilityAnalysis, [&] {
    core::StageReport r;
    device::SessionGeneratorConfig sessions;
    sessions.clients = 500;
    sessions.days = 14;
    sessions.mean_session_s = 2000.0;
    auto log = platform.generate_session_log(sessions);
    device::AvailabilityCriteria criteria;
    criteria.require_wifi = true;
    criteria.min_battery_pct = 80.0;
    criteria.require_foreground = true;
    criteria.min_os_release = 201909;
    double fraction = device::criteria_pass_fraction(log, criteria, platform.devices());
    trace = platform.build_availability(log, criteria);
    r.measurements["eligible_fraction"] = fraction;
    r.measurements["eligible_clients"] = static_cast<double>(trace.client_count());
    r.verdict = fraction > 0.10 ? core::StageVerdict::kPass : core::StageVerdict::kBlock;
    r.notes = "strict criteria leave a workable population (paper: ~22%)";
    return r;
  });

  workflow.set_stage(core::Stage::kProxyDataGeneration, [&] {
    core::StageReport r;
    auto records = task.train.to_centralized();
    std::vector<std::uint64_t> owner;
    for (const auto& c : task.train.clients())
      owner.insert(owner.end(), c.size(), c.client_id);
    data::ProxyConfig cfg;
    cfg.name = "ads-workflow-proxy";
    cfg.lookback_days = 90;
    auto entry = platform.generate_proxy(records, cfg, [&](std::size_t i) { return owner[i]; });
    r.measurements["proxy_version"] = entry.version;
    r.measurements["proxy_clients"] = static_cast<double>(entry.stats.client_population);
    r.notes = "proxy registered in the data catalog with FL metadata";
    return r;
  });

  workflow.set_stage(core::Stage::kOfflineFlEvaluation, [&] {
    core::StageReport r;
    auto model = task.make_model(platform.rng());
    fl::AsyncConfig cfg;
    cfg.inputs.dataset = &task.train;
    cfg.inputs.dense_dim = task.batch_dense_dim();
    cfg.inputs.model_template = model.get();
    cfg.inputs.trace = &trace;
    cfg.inputs.catalog = &platform.devices();
    cfg.inputs.bandwidth = &bandwidth;
    cfg.inputs.test = &task.test;
    cfg.inputs.domain = task.config.domain;
    cfg.inputs.local.loss = task.loss_kind();
    cfg.inputs.local.clip_norm = 1.0;
    cfg.inputs.duration = fl::TaskDurationModel::from_spec(ml::model_spec('B'), 1);
    cfg.inputs.client_lr = fl::LrSchedule::exponential_decay(0.12, 0.85, 40);
    cfg.inputs.max_rounds = 140;
    cfg.buffer_size = 10;
    cfg.max_concurrency = 30;
    core::ForecastConfig forecast;
    forecast.update_bytes = 760'000;
    evaluation = platform.evaluate_case_study(task, cfg, 3, 5, forecast);
    r.measurements["centralized_metric"] = evaluation.centralized_metric;
    r.measurements["fl_metric"] = evaluation.fl_metric;
    r.measurements["diff_pct"] = evaluation.performance_diff_pct;
    // Ads tolerates up to 5% metric loss for the compliance win (§4.1).
    if (evaluation.performance_diff_pct > -5.0) {
      r.notes = "FL within the ads domain's 5% tolerance";
    } else {
      r.verdict = core::StageVerdict::kBlock;
      r.notes = "FL loss exceeds the ads domain's 5% tolerance";
    }
    return r;
  });

  workflow.set_stage(core::Stage::kResourceForecast, [&] {
    core::StageReport r;
    r.measurements["training_h"] = evaluation.forecast.training_duration_h;
    r.measurements["client_compute_h"] = evaluation.forecast.total_client_compute_h;
    r.measurements["tee_mb_per_s"] = evaluation.forecast.aggregation_mbytes_per_s;
    r.verdict = evaluation.forecast.fits_tee ? core::StageVerdict::kPass
                                             : core::StageVerdict::kBlock;
    r.notes = "weekly retrain SLA satisfied; TEE bandwidth within limits";
    return r;
  });

  workflow.set_stage(core::Stage::kPrivacySecurityReview, [&] {
    core::StageReport r;
    privacy::DpConfig dp;
    dp.noise_multiplier = 1.0;
    privacy::DpAccountant accountant(dp, 0.02);
    r.measurements["rounds_within_eps4"] =
        static_cast<double>(accountant.rounds_until(4.0));
    r.verdict = core::StageVerdict::kPassWithNotes;
    r.notes = "data minimization is the primary win; SDK hub-and-spoke poisoning "
              "flagged for further research (paper §4.1)";
    return r;
  });

  workflow.set_stage(core::Stage::kDeploymentDecision, [&] {
    core::StageReport r;
    r.notes = "all gates passed; staged rollout recommended";
    return r;
  });

  core::DecisionReport report = workflow.run();
  std::cout << report.to_string();
  return report.go ? 0 : 1;
}
